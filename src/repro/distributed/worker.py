"""The lease worker: stateless compute over shared partition files.

A worker owns nothing durable.  It connects to the coordinator, learns
the grammar and join backend from the ``hello`` handshake, then loops:
pull a lease, read the two partition files the lease names out of the
shared workdir (verifying the header fingerprints), run the local
superstep through the pluggable :class:`JoinBackend` seam under its own
``--memory-budget``, and ship the new-edge delta back as packed
``(src, key)`` arrays in frame-sized chunks sealed by a ``complete``
message.  Everything stateful — scheduling, the DDM, checkpoints,
idempotent delta application — stays on the coordinator; a worker can be
SIGKILLed at any instant and the only cost is a reissued lease.

Partition files are written once and never mutated, so the worker keeps
a small fingerprint-verified read cache (:class:`_WorkerCache`) managed
by the same :class:`~repro.partition.pset.ResidencyManager` LRU policy
the engine uses, under the worker's own byte budget.  A fingerprint
mismatch means the worker cannot see the bytes the lease refers to; it
``release``\\ s the lease back to the queue instead of computing on the
wrong content.

Deterministic failure testing composes with :class:`~repro.util.faults.
FaultPlan`: when a plan schedules ``kill_worker_at_dispatch``, the
worker counts its own lease dispatches and at the scheduled one either
abruptly drops the connection and raises :class:`WorkerKilled`
(in-process thread mode) or SIGKILLs its own process via
``FaultInjector.on_dispatch`` (subprocess mode) — both look like a dead
worker to the coordinator, which reissues the lease.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.distributed.messages import (
    Lease,
    LeaseError,
    delta_chunks,
    grammar_from_payload,
    partition_fingerprint,
)
from repro.engine.parallel import make_backend
from repro.engine.superstep import run_superstep
from repro.partition.pset import ResidencyManager, _Slot
from repro.partition.storage import PartitionStore
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.util.faults import FaultInjector, FaultPlan
from repro.util.retry import RetryPolicy
from repro.util.timing import Stopwatch


class WorkerKilled(BaseException):
    """Simulated SIGKILL for in-process (thread-mode) workers.

    A ``BaseException`` so it cannot be absorbed by ordinary error
    handling on the way out — the worker must die exactly as abruptly as
    a real ``SIGKILL`` would, mid-lease, connection dropped.
    """


class _WorkerCache:
    """Fingerprint-verified partition read cache under a byte budget.

    Keyed by file path: the store writes partition files once and never
    rewrites them, so path + verified fingerprint identifies content
    forever.  Eviction reuses the engine's clock-ish
    :class:`ResidencyManager` over real :class:`_Slot` records, so the
    worker's residency behaviour matches the coordinator's under the
    same budget arithmetic.
    """

    def __init__(self, store: PartitionStore, budget_bytes: Optional[int]) -> None:
        self.store = store
        self.residency = ResidencyManager(budget_bytes)
        self._slots: Dict[str, _Slot] = {}

    def load(self, workdir: Path, entry) -> "object":
        """The partition for one lease entry, from cache or disk."""
        path = workdir / entry.path
        key = str(path)
        slot = self._slots.get(key)
        if slot is None:
            fingerprint = partition_fingerprint(path)
            if fingerprint != entry.fingerprint:
                raise LeaseError(
                    f"{entry.path}: fingerprint {fingerprint:#x} does not "
                    f"match lease {entry.fingerprint:#x}"
                )
            partition = self.store.read(path)
            slot = _Slot(
                partition=partition,
                path=path,
                edge_count=partition.num_edges,
                nbytes=partition.nbytes,
            )
            self._slots[key] = slot
            self._evict_over_budget(keep=key)
        self.residency.touch(slot, hit=True)
        return slot.partition

    def _evict_over_budget(self, keep: str) -> None:
        if self.residency.budget_bytes is None:
            return
        while True:
            resident = [(k, s) for k, s in self._slots.items() if k != keep]
            used = sum(s.nbytes for s in self._slots.values())
            if used <= self.residency.budget_bytes or not resident:
                return
            index = self.residency.select_victim([s for _, s in resident])
            if index is None:
                return
            del self._slots[resident[index][0]]


class DistributedWorker:
    """One lease worker talking to a :class:`DistributedCoordinator`.

    Parameters mirror the ``repro worker`` CLI: the coordinator address,
    the shared ``workdir``, and the worker's own ``memory_budget``.  The
    join backend and thread count come from the coordinator's ``hello``
    response so a fleet stays homogeneous without per-worker flags.
    ``fault_plan`` arms the deterministic kill hook; ``hard_kill``
    selects real ``SIGKILL`` (subprocess mode) over the simulated
    :class:`WorkerKilled` (thread mode).
    """

    def __init__(
        self,
        host: str,
        port: int,
        workdir,
        worker_id: str = "worker",
        memory_budget: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        hard_kill: bool = False,
    ) -> None:
        self.workdir = Path(workdir)
        self.worker_id = worker_id
        self.memory_budget = memory_budget
        self.client = ServiceClient(
            host, port, retry=retry if retry is not None else RetryPolicy.for_client()
        )
        self.injector = FaultInjector(fault_plan) if fault_plan else None
        self.hard_kill = hard_kill
        self.leases_completed = 0
        self._dispatches = 0
        self._client_lock = threading.Lock()
        self._store = PartitionStore(self.workdir, scrub=False)
        self._cache = _WorkerCache(self._store, memory_budget)
        self._grammar = None
        self._backend = None
        self._mid_limit = 0
        self._num_threads = 1
        self._heartbeat_interval = 10.0

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Pull and compute leases until the coordinator says ``done``.

        Returns the number of leases this worker completed.  Raises
        :class:`WorkerKilled` when a fault plan kills it mid-lease and
        :class:`ServiceError` when the coordinator disappears.
        """
        self._handshake()
        try:
            while True:
                response = self._request(op="lease", worker=self.worker_id)
                status = response.get("status")
                if status == "done":
                    return self.leases_completed
                if status == "wait":
                    time.sleep(float(response.get("retry_after", 0.02)))
                    continue
                if status != "lease":
                    raise ServiceError(f"unexpected lease response: {response}")
                lease = Lease.from_payload(response["lease"])
                self._work_one(lease)
        finally:
            if not self.hard_kill:
                self.client.close()

    def _handshake(self) -> None:
        response = self._request(op="hello", worker=self.worker_id)
        self._grammar = grammar_from_payload(response["grammar"])
        self._num_threads = int(response.get("num_threads", 1))
        self._mid_limit = int(response.get("mid_limit", 0))
        self._heartbeat_interval = float(response.get("heartbeat_interval", 10.0))
        self._backend = make_backend(
            response.get("backend") or "serial", self._grammar, self._num_threads
        )
        self._backend.__enter__()

    def _request(self, **payload) -> dict:
        with self._client_lock:
            return self.client.request(payload)

    # ------------------------------------------------------------------
    def _work_one(self, lease: Lease) -> None:
        from repro.engine.session import _combine_views

        self._dispatches += 1
        self._maybe_die()
        try:
            parts = [
                self._cache.load(self.workdir, entry)
                for entry in lease.partitions
            ]
        except (LeaseError, FileNotFoundError):
            # The lease names bytes this worker cannot see (stale file,
            # torn copy, wrong workdir): surrender it early rather than
            # letting it run out the deadline.
            self._request(op="release", lease_id=lease.lease_id)
            return

        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease.lease_id, stop_heartbeat),
            name=f"{self.worker_id}-heartbeat",
            daemon=True,
        )
        heartbeat.start()
        try:
            watch = Stopwatch().start()
            result = run_superstep(
                _combine_views(parts),
                self._grammar,
                memory_limit_edges=self._mid_limit,
                num_threads=self._num_threads,
                backend=self._backend,
            )
            compute_seconds = watch.stop()
        finally:
            stop_heartbeat.set()
            heartbeat.join()

        chunks = delta_chunks(result.added_src, result.added_keys)
        for src_b64, keys_b64 in chunks:
            self._request(
                op="delta",
                lease_id=lease.lease_id,
                epoch=lease.epoch,
                src=src_b64,
                keys=keys_b64,
            )
        self._request(
            op="complete",
            lease_id=lease.lease_id,
            epoch=lease.epoch,
            chunks=len(chunks),
            iterations=result.iterations,
            completed=result.completed,
            compute_seconds=compute_seconds,
        )
        self.leases_completed += 1

    def _heartbeat_loop(self, lease_id: str, stop: threading.Event) -> None:
        while not stop.wait(self._heartbeat_interval):
            try:
                self._request(op="heartbeat", lease_id=lease_id)
            except (ServiceError, ServiceUnavailable, OSError):
                return  # coordinator gone; the compute will find out too

    def _maybe_die(self) -> None:
        """The deterministic kill hook: die at the scheduled dispatch."""
        plan = self.injector.plan if self.injector else None
        if plan is None or plan.kill_worker_at_dispatch is None:
            return
        if self.hard_kill:
            # Subprocess mode: FaultInjector counts dispatches and sends
            # a real SIGKILL to this process at the scheduled one.
            self.injector.on_dispatch([os.getpid()])
            return
        self.injector.dispatches += 1
        if self._dispatches == plan.kill_worker_at_dispatch:
            self.injector.killed_workers += 1
            # Drop the connection without goodbye — the coordinator sees
            # EOF mid-lease, exactly like a SIGKILLed subprocess.
            self.client.close()
            raise WorkerKilled(
                f"{self.worker_id} killed at dispatch {self._dispatches}"
            )
