"""The fully context-sensitive pointer/alias analysis (§2.2, §5).

Thin, user-facing layer over the Graspan engine: build the pointer graph
from the frontend's cloned edges, run the (extended) pointer grammar, and
expose points-to sets, alias pairs, and function-pointer targets with
results translated back to source through the vertex namer.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.engine.engine import GraspanComputation, GraspanEngine
from repro.frontend.graphgen import ProgramGraphs
from repro.frontend.graphs import pointer_graph
from repro.grammar.builtin import (
    LABEL_ALIAS,
    LABEL_OF,
    pointsto_grammar_extended,
)
from repro.grammar.grammar import FrozenGrammar

PathLike = Union[str, Path]


class PointsToResult:
    """Queryable pointer-analysis results."""

    def __init__(self, pg: ProgramGraphs, computation: GraspanComputation) -> None:
        self.pg = pg
        self.namer = pg.namer
        self.computation = computation
        of_src, of_dst = computation.edges_with_label_arrays(LABEL_OF)
        self._of_src = of_src  # allocation-site vertex
        self._of_dst = of_dst  # pointer variable vertex
        self._pts: Dict[int, Set[int]] = {}
        for obj, var in zip(of_src, of_dst):
            self._pts.setdefault(int(var), set()).add(int(obj))
        al_src, al_dst = computation.edges_with_label_arrays(LABEL_ALIAS)
        self._al_src = al_src
        self._al_dst = al_dst

    # ------------------------------------------------------------------
    # vertex-level queries
    # ------------------------------------------------------------------
    def points_to(self, vid: int) -> FrozenSet[int]:
        """Allocation-site vertices that may flow into vertex ``vid``."""
        return frozenset(self._pts.get(vid, ()))

    def may_alias(self, v1: int, v2: int) -> bool:
        """May-alias via points-to intersection (§2.2)."""
        return bool(self.points_to(v1) & self.points_to(v2))

    def alias_edges(self) -> Iterator[Tuple[int, int]]:
        """All derived ``alias``-labeled edges."""
        for a, b in zip(self._al_src, self._al_dst):
            yield int(a), int(b)

    def deref_alias_pairs(self) -> List[Tuple[int, int]]:
        """Alias pairs where both sides are dereference expressions.

        These are the heap channels the dataflow analysis bridges with
        DF edges (stores reach loads of aliased cells).
        """
        pairs: List[Tuple[int, int]] = []
        for a, b in zip(self._al_src, self._al_dst):
            a, b = int(a), int(b)
            if a != b and self.namer.is_deref_symbol(a) and self.namer.is_deref_symbol(b):
                pairs.append((a, b))
        return pairs

    # ------------------------------------------------------------------
    # source-level queries (via the namer translation tables)
    # ------------------------------------------------------------------
    def var_points_to(self, function: str, var: str) -> Set[str]:
        """Union over contexts of the objects ``function::var`` points to,
        described as source-level strings."""
        out: Set[str] = set()
        for vid in self.namer.vertices_for(function, var):
            for obj in self.points_to(vid):
                out.add(self.namer.describe(obj))
        return out

    def vars_may_alias(self, f1: str, v1: str, f2: str, v2: str) -> bool:
        """May the two named variables alias in *some* pair of contexts?"""
        objs1: Set[int] = set()
        for vid in self.namer.vertices_for(f1, v1):
            objs1 |= self.points_to(vid)
        if not objs1:
            return False
        for vid in self.namer.vertices_for(f2, v2):
            if objs1 & self.points_to(vid):
                return True
        return False

    def function_pointer_targets(self, fp_vid: int) -> Set[str]:
        """Function names a function-pointer vertex may target.

        Function references are modeled as ``fn:<name>`` objects with M
        edges (§3); points-to on the pointer recovers the call targets —
        this powers the Graspan-augmented Block checker.
        """
        targets: Set[str] = set()
        for obj in self.points_to(fp_vid):
            sym = self.namer.symbol(obj)
            if sym.startswith("fn:"):
                targets.add(sym[3:])
        return targets

    @property
    def num_points_to_facts(self) -> int:
        return len(self._of_src)

    @property
    def num_alias_facts(self) -> int:
        return len(self._al_src)


@dataclass
class PointsToAnalysis:
    """Runs the pointer/alias analysis with a configured engine.

    Five grammar registrations reproduce the paper's compact grammar; by
    default the extended symmetric grammar is used so two-sided heap
    flows are found (see ``pointsto_grammar_extended``).
    """

    grammar: Optional[FrozenGrammar] = None
    max_edges_per_partition: Optional[int] = None
    workdir: Optional[PathLike] = None
    num_threads: int = 1
    parallel_backend: Optional[str] = None
    #: When set, closures come from this
    #: :class:`repro.engine.store.ClosureStore` — cached or incrementally
    #: re-closed instead of recomputed; the store's engine configuration
    #: (sizing, budget, backend) wins over this analysis's fields.
    closure_store: Optional[object] = None

    def run(self, pg: ProgramGraphs) -> PointsToResult:
        grammar = self.grammar if self.grammar is not None else pointsto_grammar_extended()
        graph = pointer_graph(pg)
        if self.closure_store is not None:
            computation = self.closure_store.closure(grammar, graph)
        else:
            engine = GraspanEngine(
                grammar,
                max_edges_per_partition=self.max_edges_per_partition,
                workdir=self.workdir,
                num_threads=self.num_threads,
                parallel_backend=self.parallel_backend,
            )
            computation = engine.run(graph)
        return PointsToResult(pg, computation)
