"""Escape analysis: a third grammar-backed client of the engine.

The paper positions Graspan as a backend for *many* interprocedural
analyses (§3 lists polymorphic flow, shape, information-flow analyses as
CFL-reachability instances).  This module demonstrates the claim with a
classic: **escape analysis** — does a heap object outlive the function
that allocated it?  Knowing it does not enables stack allocation,
lock elision, and scalar replacement.

No new closure is needed: the pointer analysis' ``objectFlow`` edges
already encode every (object, variable) flow, and full context-sensitive
inlining makes frames explicit — each clone *is* a frame, and the clone
tree *is* the call tree.  An object allocated in clone ``c`` of function
``f`` escapes iff it flows to

* a **global** vertex (visible after ``f`` returns),
* a vertex in a **strict ancestor** context (the value traveled up past
  ``f``'s frame — the inlined form of "returned to a caller"), or a
  vertex in an unrelated branch of the clone tree (which implies an
  ancestor hop anyway; kept for conservatism),
* a **dereference** vertex (stored into some heap cell; field-insensitive
  like the rest of the system, so any heap store is treated as escaping),
* a **same-context vertex of a different function** (only possible inside
  a collapsed recursion group, where frame lifetimes are merged), or
* a **spawned-thread clone** (the value crossed a ``spawn`` boundary on
  its way down: the thread runs concurrently with — and may outlive —
  the allocator's frame, so thread-locality is gone).

Flowing *down* into (non-spawned) callee clones is not an escape: those
frames die before the allocator's does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.pointsto import PointsToResult
from repro.frontend.graphgen import ProgramGraphs


@dataclass(frozen=True)
class EscapeInfo:
    """Verdict for one allocation-site clone."""

    object_vid: int
    function: str
    context: int
    symbol: str  # e.g. "alloc@12.1"
    escapes: bool
    #: subset of {"global", "caller", "heap", "recursion", "thread"}
    reasons: Tuple[str, ...]


class EscapeResult:
    """Escape verdicts for every allocation-site clone."""

    def __init__(self, infos: List[EscapeInfo]) -> None:
        self._infos = infos
        self._by_site: Dict[Tuple[str, str], List[EscapeInfo]] = {}
        for info in infos:
            self._by_site.setdefault((info.function, info.symbol), []).append(info)

    def __iter__(self):
        return iter(self._infos)

    @property
    def num_objects(self) -> int:
        return len(self._infos)

    @property
    def num_escaping(self) -> int:
        return sum(1 for i in self._infos if i.escapes)

    def escapes(self, function: str, symbol: str) -> bool:
        """Does the named allocation site escape in *any* context?"""
        infos = self._by_site.get((function, symbol))
        if infos is None:
            raise KeyError(f"no allocation site {symbol!r} in {function!r}")
        return any(i.escapes for i in infos)

    def stack_allocatable(self, function: str) -> List[str]:
        """Allocation sites of ``function`` that never escape — the
        classic optimization payoff."""
        out = []
        for (func, symbol), infos in sorted(self._by_site.items()):
            if func == function and not any(i.escapes for i in infos):
                out.append(symbol)
        return out

    def summary_by_function(self) -> Dict[str, Tuple[int, int]]:
        """function -> (escaping clones, total clones)."""
        out: Dict[str, Tuple[int, int]] = {}
        for info in self._infos:
            esc, total = out.get(info.function, (0, 0))
            out[info.function] = (esc + int(info.escapes), total + 1)
        return out


@dataclass
class EscapeAnalysis:
    """Classify allocation sites using pointer-analysis object flows."""

    def run(self, pg: ProgramGraphs, pointsto: PointsToResult) -> EscapeResult:
        namer = pg.namer
        # reasons per object, accumulated over its objectFlow targets
        reasons: Dict[int, Set[str]] = {}
        obj_src, var_dst = pointsto.computation.edges_with_label_arrays("OF")
        for obj, var in zip(obj_src, var_dst):
            obj, var = int(obj), int(var)
            if not namer.symbol(obj).startswith("alloc@"):
                continue  # function objects (fn:*) are not heap allocations
            acc = reasons.setdefault(obj, set())
            var_function = namer.function(var)
            if var_function == "":
                acc.add("global")
                continue
            if namer.is_deref_symbol(var):
                acc.add("heap")
                continue
            obj_ctx = namer.context(obj)
            var_ctx = namer.context(var)
            if var_ctx == obj_ctx:
                if var_function != namer.function(obj):
                    acc.add("recursion")
                continue  # same frame: stays local
            if namer.is_context_ancestor(obj_ctx, var_ctx):
                if self._crosses_spawn(pg, obj_ctx, var_ctx):
                    acc.add("thread")
                continue  # flowed *down* into a plain callee: dies first
            acc.add("caller")

        infos = [
            EscapeInfo(
                object_vid=obj,
                function=namer.function(obj),
                context=namer.context(obj),
                symbol=namer.symbol(obj),
                escapes=bool(reason_set),
                reasons=tuple(sorted(reason_set)),
            )
            for obj, reason_set in sorted(reasons.items())
        ]
        return EscapeResult(infos)

    @staticmethod
    def _crosses_spawn(pg: ProgramGraphs, obj_ctx: int, var_ctx: int) -> bool:
        """Does the context path from ``obj_ctx`` down to ``var_ctx`` cross
        a ``spawn`` boundary?  ``var_ctx`` must be a strict descendant."""
        if not pg.spawn_contexts:
            return False
        namer = pg.namer
        ctx = var_ctx
        while ctx != obj_ctx and ctx != 0:
            if ctx in pg.spawn_contexts:
                return True
            ctx = namer.context_parent(ctx)
        return False
