"""Source-tracking dataflow analyses: NULL propagation and taint.

The paper's dataflow analysis "was designed specifically to track NULL
value propagation ... built based on the pointer analysis because it
needs to query pointer analysis results when analyzing heap loads and
stores" (§5).  We implement that as a generic *source-tracking* closure —
a two-production grammar (``NF ::= N | NF DF``) over a graph whose DF
edges are assignments plus pointer-analysis-derived heap bridges — and
instantiate it twice:

* :class:`NullDataflowAnalysis` — sources are NULL assignments; a
  variable with an ``NF`` edge from the NULL vertex *may be NULL*.
* :class:`TaintDataflowAnalysis` — sources are ``get_user()`` results
  and flow additionally crosses arithmetic; feeds the Range checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.engine.engine import GraspanComputation, GraspanEngine
from repro.frontend.graphgen import ProgramGraphs
from repro.frontend.graphs import dataflow_graph
from repro.grammar.builtin import LABEL_NF, nullflow_grammar
from repro.analysis.pointsto import PointsToResult

PathLike = Union[str, Path]


class SourceFlowResult:
    """Which vertices a tracked source value may reach."""

    def __init__(
        self,
        pg: ProgramGraphs,
        computation: GraspanComputation,
        kind: str,
    ) -> None:
        self.pg = pg
        self.namer = pg.namer
        self.computation = computation
        self.kind = kind  # "null" or "taint"
        nf_src, nf_dst = computation.edges_with_label_arrays(LABEL_NF)
        # All NF edges start at a source vertex (the single NULL/USER
        # vertex); the reached set is just the targets.
        self.reached: Set[int] = {int(v) for v in nf_dst}

    def vertex_may_receive(self, vid: int) -> bool:
        return vid in self.reached

    def contexts_reaching(self, function: str, var: str) -> List[int]:
        """The contexts (clone ids) in which the source reaches the var."""
        return [
            self.namer.context(vid)
            for vid in self.namer.vertices_for(function, var)
            if vid in self.reached
        ]

    def may_receive(self, function: str, var: str) -> bool:
        """May the source value reach ``function::var`` in *any* context?"""
        return any(
            vid in self.reached for vid in self.namer.vertices_for(function, var)
        )

    def never_receives(self, function: str, var: str) -> bool:
        """True when *no* context lets the source reach the variable.

        This is the `must not be NULL` judgment behind the UNTest
        checker: flow-insensitively, a pointer no context can make NULL
        does not need a NULL test.
        """
        vids = self.namer.vertices_for(function, var)
        return bool(vids) and all(vid not in self.reached for vid in vids)

    @property
    def num_flow_facts(self) -> int:
        return len(self.reached)


@dataclass
class SourceTrackingAnalysis:
    """Shared machinery for NULL and taint tracking."""

    taint: bool = False
    max_edges_per_partition: Optional[int] = None
    workdir: Optional[PathLike] = None
    num_threads: int = 1
    parallel_backend: Optional[str] = None
    #: Optional :class:`repro.engine.store.ClosureStore`; see
    #: :class:`repro.analysis.pointsto.PointsToAnalysis`.
    closure_store: Optional[object] = None

    def run(
        self,
        pg: ProgramGraphs,
        pointsto: Optional[PointsToResult] = None,
    ) -> SourceFlowResult:
        """Run the closure; heap bridges come from ``pointsto`` if given."""
        alias_pairs: Sequence[Tuple[int, int]] = ()
        if pointsto is not None:
            alias_pairs = pointsto.deref_alias_pairs()
        graph = dataflow_graph(pg, alias_pairs=alias_pairs, taint=self.taint)
        if self.closure_store is not None:
            computation = self.closure_store.closure(nullflow_grammar(), graph)
        else:
            engine = GraspanEngine(
                nullflow_grammar(),
                max_edges_per_partition=self.max_edges_per_partition,
                workdir=self.workdir,
                num_threads=self.num_threads,
                parallel_backend=self.parallel_backend,
            )
            computation = engine.run(graph)
        return SourceFlowResult(
            pg, computation, kind="taint" if self.taint else "null"
        )


class NullDataflowAnalysis(SourceTrackingAnalysis):
    """Tracks NULL values (the paper's second analysis)."""

    def __init__(self, **kwargs) -> None:
        super().__init__(taint=False, **kwargs)


class TaintDataflowAnalysis(SourceTrackingAnalysis):
    """Tracks user-controlled data for the Range checker."""

    def __init__(self, **kwargs) -> None:
        super().__init__(taint=True, **kwargs)
