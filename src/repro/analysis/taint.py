"""Interprocedural taint/injection analysis: a grammar client.

Graspan's thesis is that a new interprocedural analysis should cost "a
grammar + a graph" (§3).  This module is the demonstration: untrusted
input (``input()``) must not reach an injection sink (``query()`` /
``exec()``) without passing the cleanser (``sanitize()``), and the whole
judgment is one two-production closure::

    TT ::= TS | TT TD

``TS`` edges connect the shared TAINT vertex to every ``input()``
result; ``TD`` edges are the taint-propagating flows — assignments and
parameter/return bindings (already context-sensitively wired by graph
generation, so flows through call chains are interprocedural for free),
arithmetic, and alias bridges from the pointer closure so taint crosses
the heap where stores and loads may touch the same cell.  Sanitization
is *structural*: ``sanitize()`` contributes no edge, so a ``TT`` edge
into a vertex literally means "untrusted input reaches this variable
with no cleanser on any path".

Finding the injection flows is then a linear scan over the lowered
``sink`` statements: a sink argument whose clone vertex carries a ``TT``
edge is an injection.  No per-sink graph traversal, no second closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.pointsto import PointsToResult
from repro.engine.engine import GraspanComputation, GraspanEngine
from repro.frontend.graphgen import ProgramGraphs
from repro.frontend.graphs import taint_graph
from repro.grammar.builtin import LABEL_TT, taint_grammar

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TaintFlow:
    """One unsanitized source→sink flow: a sink argument taint reaches."""

    function: str
    module: str
    line: int
    sink: str  # "query" or "exec"
    var: str  # the tainted sink argument
    contexts: Tuple[int, ...]  # clone contexts the flow occurs in

    def describe(self) -> str:
        where = f"{self.function}:{self.line}"
        clones = len(self.contexts)
        suffix = f" [{clones} context{'s' if clones != 1 else ''}]"
        return (
            f"injection: unsanitized input reaches {self.sink}({self.var}) "
            f"at {where}{suffix}"
        )


class TaintResult:
    """The taint closure plus the injection flows derived from it."""

    def __init__(
        self,
        pg: ProgramGraphs,
        computation: GraspanComputation,
    ) -> None:
        self.pg = pg
        self.namer = pg.namer
        self.computation = computation
        _, tt_dst = computation.edges_with_label_arrays(LABEL_TT)
        # Every TT edge starts at the single TAINT vertex; the tainted
        # set is just the targets.
        self.tainted: Set[int] = {int(v) for v in tt_dst}
        self.flows: List[TaintFlow] = self._find_flows()

    # -- closure queries ------------------------------------------------
    def vertex_tainted(self, vid: int) -> bool:
        return vid in self.tainted

    def may_receive(self, function: str, var: str) -> bool:
        """May unsanitized input reach ``function::var`` in any context?"""
        return any(
            vid in self.tainted
            for vid in self.namer.vertices_for(function, var)
        )

    def contexts_reaching(self, function: str, var: str) -> List[int]:
        """The clone contexts in which taint reaches the variable."""
        return [
            self.namer.context(vid)
            for vid in self.namer.vertices_for(function, var)
            if vid in self.tainted
        ]

    @property
    def num_tainted(self) -> int:
        return len(self.tainted)

    @property
    def num_flows(self) -> int:
        return len(self.flows)

    # -- flow extraction ------------------------------------------------
    def _find_flows(self) -> List[TaintFlow]:
        """Scan ``sink`` statements; report tainted arguments per clone."""
        flows: List[TaintFlow] = []
        namer = self.namer
        for fname in sorted(self.pg.lowered.functions):
            func = self.pg.lowered.functions[fname]
            local_names = set(func.params) | set(func.locals)
            sinks = func.statements_of_kind("sink")
            if not sinks:
                continue
            contexts = sorted(self.pg.instance_contexts.get(fname, ()))
            for stmt in sinks:
                for var in stmt.args:
                    if not var:
                        continue
                    hit_contexts: List[int] = []
                    for ctx in contexts:
                        vid = _var_vid(self.pg, fname, ctx, local_names, var)
                        if vid is not None and vid in self.tainted:
                            hit_contexts.append(ctx)
                    if hit_contexts:
                        flows.append(
                            TaintFlow(
                                function=fname,
                                module=func.module,
                                line=stmt.line,
                                sink=stmt.callee or "sink",
                                var=var,
                                contexts=tuple(hit_contexts),
                            )
                        )
        return flows


def _var_vid(
    pg: ProgramGraphs,
    fname: str,
    ctx: int,
    local_names: Set[str],
    var: str,
) -> Optional[int]:
    """The vertex of ``var`` as seen from clone ``ctx`` of ``fname``."""
    namer = pg.namer
    if var in local_names:
        for vid in namer.vertices_for(fname, var):
            if namer.context(vid) == ctx:
                return vid
        return None
    vids = namer.vertices_for("", "@" + var)
    return vids[0] if vids else None


@dataclass
class TaintAnalysis:
    """Runs the taint grammar over the taint graph.

    Structured exactly like :class:`SourceTrackingAnalysis` — one engine
    run over an analysis-specific graph; alias bridges come from an
    existing :class:`PointsToResult` when provided (heap-aware taint).
    """

    max_edges_per_partition: Optional[int] = None
    workdir: Optional[PathLike] = None
    num_threads: int = 1
    parallel_backend: Optional[str] = None
    #: Optional :class:`repro.engine.store.ClosureStore`; see
    #: :class:`repro.analysis.pointsto.PointsToAnalysis`.
    closure_store: Optional[object] = None

    def run(
        self,
        pg: ProgramGraphs,
        pointsto: Optional[PointsToResult] = None,
    ) -> TaintResult:
        alias_pairs: Sequence[Tuple[int, int]] = ()
        if pointsto is not None:
            alias_pairs = pointsto.deref_alias_pairs()
        graph = taint_graph(pg, alias_pairs=alias_pairs)
        if self.closure_store is not None:
            computation = self.closure_store.closure(taint_grammar(), graph)
        else:
            engine = GraspanEngine(
                taint_grammar(),
                max_edges_per_partition=self.max_edges_per_partition,
                workdir=self.workdir,
                num_threads=self.num_threads,
                parallel_backend=self.parallel_backend,
            )
            computation = engine.run(graph)
        return TaintResult(pg, computation)
