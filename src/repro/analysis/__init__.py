"""The paper's two interprocedural analyses, as a library API.

Typical use::

    from repro.frontend import compile_program
    from repro.analysis import PointsToAnalysis, NullDataflowAnalysis

    pg = compile_program(source)
    pts = PointsToAnalysis().run(pg)
    nulls = NullDataflowAnalysis().run(pg, pointsto=pts)
    nulls.may_receive("caller", "q")   # may q be NULL in some context?
"""

from repro.analysis.pointsto import PointsToAnalysis, PointsToResult
from repro.analysis.dataflow import (
    NullDataflowAnalysis,
    SourceFlowResult,
    SourceTrackingAnalysis,
    TaintDataflowAnalysis,
)
from repro.analysis.escape import EscapeAnalysis, EscapeInfo, EscapeResult
from repro.analysis.races import (
    Access,
    RaceAnalysis,
    RaceReport,
    RaceResult,
)
from repro.analysis.taint import TaintAnalysis, TaintFlow, TaintResult

__all__ = [
    "PointsToAnalysis",
    "PointsToResult",
    "NullDataflowAnalysis",
    "TaintDataflowAnalysis",
    "SourceTrackingAnalysis",
    "SourceFlowResult",
    "EscapeAnalysis",
    "EscapeInfo",
    "EscapeResult",
    "Access",
    "RaceAnalysis",
    "RaceReport",
    "RaceResult",
    "TaintAnalysis",
    "TaintFlow",
    "TaintResult",
]
