"""Lockset-based data race detection: a fourth client of the engine.

The paper's thesis is that many interprocedural analyses become cheap
once the transitive closure is materialized (§3, §6).  This module adds
the classic concurrency example: an **Eraser-style lockset race
detector**, made interprocedural and alias-aware by the already-computed
pointer closure — no second engine run is needed.

The pieces, all derived from existing artifacts:

* **Threads.**  ``spawn f(args);`` sites create clone contexts marked in
  :attr:`ProgramGraphs.spawn_contexts`.  Every context belongs to the
  thread of its nearest spawn ancestor (the root context is the main
  thread), so the clone tree partitions all code into static threads.

* **Shared objects.**  An allocation-site clone can be touched by two
  threads only if it escapes its allocating frame: it reached a global,
  or flowed *down across a spawn boundary* (the escape analysis'
  ``thread`` reason).  Non-escaping objects are thread-local by
  construction — context-sensitive cloning already gives each spawned
  thread its own copy of the allocation sites it executes.

* **Locksets.**  Each function instance is scanned once; ``lock(x)`` /
  ``unlock(x)`` maintain the set of held locks, where a lock's
  *identity* is the points-to set of ``x`` in that clone — two
  differently-named variables holding the same lock object protect the
  same data, and ``unlock`` through an alias releases the matching
  acquisition.  At a call site the callee clone inherits the caller's
  current lockset (summary-based must-hold propagation down the context
  tree); at a ``spawn`` site the new thread starts with an **empty**
  lockset — locks held while spawning are not held by the spawned body.

* **Races.**  Two accesses to one shared object race when they come from
  different threads, at least one writes, and their locksets share no
  lock identity.

Like the checkers, the per-function scan is straight-line (guards are
ignored); path-sensitive must-hold information is out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.analysis.escape import EscapeAnalysis, EscapeResult
from repro.analysis.pointsto import PointsToResult
from repro.frontend.graphgen import ProgramGraphs

#: A lock identity token: an allocation-site vertex id, or a name-based
#: fallback string when the lock variable has no points-to facts.
LockToken = Union[int, str]


@dataclass(frozen=True)
class HeldLock:
    """One acquired lock: the acquiring variable plus its identity."""

    name: str  # source variable at the acquisition site
    tokens: FrozenSet[LockToken]  # identity: points-to objects (or name)


Lockset = FrozenSet[HeldLock]


def locksets_share_lock(a: Lockset, b: Lockset) -> bool:
    """Do the two locksets hold at least one common lock object?"""
    for la in a:
        for lb in b:
            if la.tokens & lb.tokens:
                return True
    return False


@dataclass(frozen=True)
class Access:
    """One heap access (a load or store through a pointer) in one clone."""

    function: str
    context: int
    thread: int  # spawn context of the owning thread (0 = main)
    var: str  # the pointer variable dereferenced
    line: int
    is_write: bool
    objects: FrozenSet[int]  # allocation-site vertices it may touch
    lockset: Lockset


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting accesses on one shared object."""

    object_vid: int
    object_desc: str
    first: Access
    second: Access

    def describe(self) -> str:
        def side(a: Access) -> str:
            kind = "write" if a.is_write else "read"
            locks = (
                "{" + ", ".join(sorted(h.name for h in a.lockset)) + "}"
                if a.lockset
                else "{}"
            )
            return f"{kind} of *{a.var} in {a.function}:{a.line} holding {locks}"

        return (
            f"race on {self.object_desc}: "
            f"{side(self.first)} vs {side(self.second)}"
        )


class RaceResult:
    """Race reports plus the intermediate facts, for reporting."""

    def __init__(
        self,
        reports: List[RaceReport],
        shared_objects: Dict[int, str],
        accesses: List[Access],
        num_threads: int,
    ) -> None:
        self.reports = reports
        self.shared_objects = shared_objects
        self.accesses = accesses
        self.num_threads = num_threads

    @property
    def num_reports(self) -> int:
        return len(self.reports)

    @property
    def num_shared_objects(self) -> int:
        return len(self.shared_objects)

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)


@dataclass
class RaceAnalysis:
    """Interprocedural lockset race detection over the pointer closure.

    ``run`` consumes an existing :class:`PointsToResult` (and optionally
    an existing :class:`EscapeResult`); it never launches a second
    engine computation.
    """

    def run(
        self,
        pg: ProgramGraphs,
        pointsto: PointsToResult,
        escape: Optional[EscapeResult] = None,
    ) -> RaceResult:
        if not pg.spawn_contexts:
            return RaceResult([], {}, [], num_threads=1)
        if escape is None:
            escape = EscapeAnalysis().run(pg, pointsto)

        namer = pg.namer
        escaping: Dict[int, bool] = {i.object_vid: i.escapes for i in escape}
        thread_of = self._thread_map(pg)

        # child contexts per (parent ctx, caller, line, callee) call site
        children: Dict[Tuple[int, str, int, str], List[int]] = {}
        for ctx, site in pg.context_call_sites.items():
            key = (namer.context_parent(ctx), site.caller, site.line, site.callee)
            children.setdefault(key, []).append(ctx)

        ctx_functions: Dict[int, List[str]] = {}
        for fname, ctxs in pg.instance_contexts.items():
            for ctx in ctxs:
                ctx_functions.setdefault(ctx, []).append(fname)

        entry_locks: Dict[int, Lockset] = {0: frozenset()}
        accesses: List[Access] = []
        # Ascending order: every context id is greater than its parent's,
        # so a clone's entry lockset is always recorded before its scan.
        for ctx in sorted(ctx_functions):
            entry = entry_locks.get(ctx, frozenset())
            for fname in sorted(ctx_functions[ctx]):
                self._scan_instance(
                    pg, pointsto, fname, ctx, entry, thread_of,
                    children, entry_locks, accesses,
                )

        return self._pair_races(namer, escaping, accesses, thread_of)

    # ------------------------------------------------------------------
    @staticmethod
    def _thread_map(pg: ProgramGraphs) -> Dict[int, int]:
        """context -> owning thread (its nearest spawn ancestor, or 0)."""
        namer = pg.namer
        thread_of: Dict[int, int] = {0: 0}
        for ctx in range(1, namer.num_contexts):
            if ctx in pg.spawn_contexts:
                thread_of[ctx] = ctx
            else:
                thread_of[ctx] = thread_of[namer.context_parent(ctx)]
        return thread_of

    def _scan_instance(
        self,
        pg: ProgramGraphs,
        pointsto: PointsToResult,
        fname: str,
        ctx: int,
        entry: Lockset,
        thread_of: Dict[int, int],
        children: Dict[Tuple[int, str, int, str], List[int]],
        entry_locks: Dict[int, Lockset],
        accesses: List[Access],
    ) -> None:
        """One straight-line pass over a function clone: maintain the
        lockset, record heap accesses, seed callee-clone entry locksets."""
        namer = pg.namer
        func = pg.lowered.functions[fname]
        local_names = set(func.params) | set(func.locals)
        held: List[HeldLock] = list(entry)
        for stmt in func.stmts:
            if stmt.kind == "lock" and stmt.rhs:
                held.append(
                    HeldLock(
                        name=stmt.rhs,
                        tokens=self._lock_identity(
                            pg, pointsto, fname, ctx, local_names, stmt.rhs
                        ),
                    )
                )
            elif stmt.kind == "unlock" and stmt.rhs:
                identity = self._lock_identity(
                    pg, pointsto, fname, ctx, local_names, stmt.rhs
                )
                self._release(held, stmt.rhs, identity)
            elif stmt.kind in ("load", "store"):
                var = stmt.rhs if stmt.kind == "load" else stmt.lhs
                if not var:
                    continue
                vid = self._var_vid(pg, fname, ctx, local_names, var)
                if vid is None:
                    continue
                objects = frozenset(
                    obj
                    for obj in pointsto.points_to(vid)
                    if namer.symbol(obj).startswith("alloc@")
                )
                if not objects:
                    continue
                accesses.append(
                    Access(
                        function=fname,
                        context=ctx,
                        thread=thread_of[ctx],
                        var=var,
                        line=stmt.line,
                        is_write=stmt.kind == "store",
                        objects=objects,
                        lockset=frozenset(held),
                    )
                )
            elif stmt.kind in ("call", "spawn") and stmt.callee:
                key = (ctx, fname, stmt.line, stmt.callee)
                for child in children.get(key, ()):
                    entry_locks[child] = (
                        frozenset() if stmt.kind == "spawn" else frozenset(held)
                    )

    @staticmethod
    def _release(held: List[HeldLock], name: str, identity: FrozenSet) -> None:
        """Drop the most recent acquisition matching by name or identity."""
        for i in range(len(held) - 1, -1, -1):
            if held[i].name == name or (held[i].tokens & identity):
                del held[i]
                return

    def _lock_identity(
        self,
        pg: ProgramGraphs,
        pointsto: PointsToResult,
        fname: str,
        ctx: int,
        local_names: Set[str],
        var: str,
    ) -> FrozenSet[LockToken]:
        """A lock variable's identity: its points-to set in this clone,
        falling back to the (alias-blind) name when it points nowhere."""
        vid = self._var_vid(pg, fname, ctx, local_names, var)
        if vid is not None:
            objs = pointsto.points_to(vid)
            if objs:
                return frozenset(int(o) for o in objs)
        if var not in local_names:
            return frozenset({"@" + var})
        return frozenset({f"{fname}:{var}"})

    @staticmethod
    def _var_vid(
        pg: ProgramGraphs,
        fname: str,
        ctx: int,
        local_names: Set[str],
        var: str,
    ) -> Optional[int]:
        """The vertex of ``var`` as seen from clone ``ctx`` of ``fname``."""
        namer = pg.namer
        if var in local_names:
            for vid in namer.vertices_for(fname, var):
                if namer.context(vid) == ctx:
                    return vid
            return None
        vids = namer.vertices_for("", "@" + var)
        return vids[0] if vids else None

    # ------------------------------------------------------------------
    @staticmethod
    def _pair_races(
        namer,
        escaping: Dict[int, bool],
        accesses: List[Access],
        thread_of: Dict[int, int],
    ) -> RaceResult:
        by_object: Dict[int, List[Access]] = {}
        for access in accesses:
            for obj in access.objects:
                by_object.setdefault(obj, []).append(access)

        shared: Dict[int, str] = {}
        reports: List[RaceReport] = []
        seen: Set[Tuple] = set()
        for obj in sorted(by_object):
            obj_accesses = by_object[obj]
            threads = {a.thread for a in obj_accesses}
            # Shared = escaping AND actually touched by two threads.
            if len(threads) < 2 or not escaping.get(obj, True):
                continue
            shared[obj] = namer.describe(obj)
            for i, a in enumerate(obj_accesses):
                for b in obj_accesses[i + 1 :]:
                    if a.thread == b.thread:
                        continue
                    if not (a.is_write or b.is_write):
                        continue
                    if locksets_share_lock(a.lockset, b.lockset):
                        continue
                    first, second = sorted(
                        (a, b), key=lambda x: (x.function, x.line, x.var)
                    )
                    key = (
                        obj,
                        first.function, first.var, first.line, first.is_write,
                        second.function, second.var, second.line, second.is_write,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    reports.append(
                        RaceReport(
                            object_vid=obj,
                            object_desc=namer.describe(obj),
                            first=first,
                            second=second,
                        )
                    )
        num_threads = len(set(thread_of.values()))
        return RaceResult(reports, shared, accesses, num_threads=num_threads)
