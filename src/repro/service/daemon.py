"""The closure daemon: resident closures, concurrent checker queries.

One :class:`ClosureDaemon` owns one :class:`~repro.engine.store.ClosureStore`
and an asyncio socket server speaking the JSON-lines protocol:

``ping``
    Liveness probe.
``load {name, source|sources, context_depth?}``
    Compile the MiniC program, run the four engine-backed analyses
    through the store (cache hit / incremental delta re-closure / cold
    run, per DESIGN.md §14), cache the resulting
    :class:`~repro.checkers.base.AnalysisContext` under ``name``, and
    pin the hottest partitions resident under the store's memory budget
    (:meth:`~repro.partition.pset.PartitionSet.pin_hot` — peak residency
    stays ≤ budget + one partition).
``check {program, checker?, mode?}``
    Run one or all registered checkers against a loaded program and
    return the reports.  Queries run on a thread pool, so many clients
    can check concurrently against the same resident closures — the
    partition sets are internally locked and checker instances are
    per-request.
``status``
    Programs loaded, per-closure residency/pinning, store entries.
``health``
    Cheap liveness + load report: in-flight count, shed/deadline
    counters, drain state, store degradations.  Never shed, never
    queued — safe to poll from orchestrators while the daemon is busy.
``shutdown``
    Stop the server after responding.

Blocking work (compile + closure + checking) runs on a
``ThreadPoolExecutor`` so the event loop stays responsive.  Three
hardening layers keep an overloaded or dying daemon *predictable*:

**Bounded in-flight queue.**  At most ``max_inflight`` blocking requests
are admitted at once; the next one is answered immediately with a typed
``kind: "overloaded"`` error (plus a ``retry_after`` hint) instead of
queueing without bound or dropping the connection.  Clients with a
retry policy back off and try again; counters surface in ``health``.

**Per-request deadlines.**  With ``request_timeout`` set, a blocking
request that exceeds it is answered with ``kind: "deadline"``.  The
worker thread finishes in the background (Python threads cannot be
killed) and still holds its in-flight slot until it does, so deadline
storms shed load rather than stacking invisible work.

**Graceful drain.**  ``SIGTERM`` (when the loop runs on the main
thread) or :meth:`request_drain` stops admitting blocking work — new
requests get ``kind: "draining"`` — waits up to ``drain_grace`` seconds
for in-flight requests to finish, then stops the server.

Oversized frames no longer kill the connection either: the daemon
drains the over-limit payload to its terminating newline, answers with
``kind: "protocol-error"``, and keeps serving the same socket.

A planned
:class:`~repro.util.faults.InjectedCrash` during a request is the
daemon's simulated power loss: with ``crash_mode="exit"`` (the ``serve``
CLI) the process hard-exits like a SIGKILL, leaving the store entry
interrupted mid-journal; with ``crash_mode="raise"`` (in-process tests)
the daemon reports the crash and stops serving.  Either way a restarted
daemon resumes the interrupted closure from its committed watermark on
the next ``load``.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
)
from repro.util.faults import InjectedCrash

PathLike = Union[str, Path]

#: Exit status of a ``crash_mode="exit"`` daemon hit by an injected
#: crash — distinguishable from a clean shutdown (0) and from Python
#: tracebacks (1) in the subprocess fault tests.
CRASH_EXIT_STATUS = 70


class ClosureDaemon:
    """Serves checker queries against store-backed resident closures."""

    def __init__(
        self,
        store_root: PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        max_edges_per_partition: Optional[int] = None,
        num_partitions: Optional[int] = None,
        memory_budget: Optional[int] = None,
        num_threads: int = 1,
        parallel_backend: Optional[str] = None,
        num_workers: int = 8,
        fault_injector=None,
        crash_mode: str = "raise",
        announce: bool = False,
        max_inflight: int = 32,
        request_timeout: Optional[float] = None,
        drain_grace: float = 10.0,
        max_message_bytes: int = MAX_MESSAGE_BYTES,
    ) -> None:
        from repro.engine.store import ClosureStore  # local: heavy import

        if crash_mode not in ("raise", "exit"):
            raise ValueError(f"unknown crash_mode {crash_mode!r}")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.store = ClosureStore(
            store_root,
            max_edges_per_partition=max_edges_per_partition,
            num_partitions=num_partitions,
            memory_budget=memory_budget,
            num_threads=num_threads,
            parallel_backend=parallel_backend,
            fault_injector=fault_injector,
        )
        self.host = host
        self.port = port
        self.num_workers = num_workers
        self.crash_mode = crash_mode
        self.announce = announce
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.drain_grace = drain_grace
        self.max_message_bytes = max_message_bytes
        self.address: Optional[Tuple[str, int]] = None
        self.crashed: Optional[str] = None
        self.shed_count = 0
        self.deadline_count = 0
        self.oversized_count = 0
        self._inflight = 0
        self._draining = False
        self._programs: Dict[str, Any] = {}  # name -> AnalysisContext
        self._pinned: Dict[str, Dict[str, List[int]]] = {}
        self._programs_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="closure-svc"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._requests_served = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the server until :meth:`request_stop` (or ``shutdown``)."""
        try:
            asyncio.run(self._main())
        finally:
            self._executor.shutdown(wait=False)

    def request_stop(self) -> None:
        """Ask a running server to stop; safe from any thread."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            # The loop closed between the check and the call: the
            # server is already down, which is what was asked for.
            pass

    def request_drain(self) -> None:
        """Begin a graceful drain; safe from any thread.

        Stops admitting blocking work (new ``load``/``check`` requests
        are answered ``kind: "draining"``), waits up to ``drain_grace``
        seconds for in-flight requests to complete, then stops the
        server.  This is also the ``SIGTERM`` behavior when the daemon
        owns the main thread (the ``serve`` CLI).
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._begin_drain)
        except RuntimeError:
            pass

    def _begin_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        assert self._loop is not None
        self._loop.create_task(self._drain_then_stop())

    async def _drain_then_stop(self) -> None:
        deadline = asyncio.get_running_loop().time() + self.drain_grace
        while self._inflight > 0:
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0.05)
        if self._stop is not None:
            self._stop.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client,
            host=self.host,
            port=self.port,
            limit=self.max_message_bytes,
        )
        try:
            # SIGTERM drains gracefully when the loop owns the main
            # thread; in-process ServiceThread daemons use
            # request_drain() instead (signals stay with the host app).
            self._loop.add_signal_handler(signal.SIGTERM, self._begin_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        self.address = server.sockets[0].getsockname()[:2]
        if self.announce:
            import sys

            print(
                f"serving on {self.address[0]}:{self.address[1]}",
                file=sys.stderr,
                flush=True,
            )
        self._started.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self._started.clear()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _read_frame(self, reader) -> Tuple[Optional[bytes], bool]:
        """One newline-terminated frame; ``(line, oversized)``.

        ``line`` is ``None`` at EOF.  An over-limit frame is *discarded
        through its terminating newline* — consuming exactly the scanned
        bytes each round, so no byte of the next request is lost — and
        reported as ``oversized`` with the connection still framed.
        """
        try:
            return await reader.readuntil(b"\n"), False
        except asyncio.IncompleteReadError as exc:
            return (exc.partial or None), False
        except asyncio.LimitOverrunError as exc:
            consumed = exc.consumed
            while True:
                if consumed:
                    try:
                        await reader.readexactly(consumed)
                    except asyncio.IncompleteReadError:
                        return None, True
                try:
                    await reader.readuntil(b"\n")
                    return b"", True
                except asyncio.IncompleteReadError:
                    return None, True
                except asyncio.LimitOverrunError as again:
                    consumed = again.consumed

    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                line, oversized = await self._read_frame(reader)
                if oversized:
                    # The frame is gone but the stream is intact: answer
                    # with a typed protocol error and keep serving.
                    self.oversized_count += 1
                    writer.write(
                        encode_message(
                            error_response(
                                f"frame exceeds the "
                                f"{self.max_message_bytes}-byte limit",
                                kind="protocol-error",
                                limit=self.max_message_bytes,
                            )
                        )
                    )
                    await writer.drain()
                    if line is None:
                        break
                    continue
                if not line:
                    break
                request: Dict[str, Any] = {}
                try:
                    request = decode_message(line)
                except ProtocolError as exc:
                    response: Dict[str, Any] = error_response(
                        str(exc), kind="protocol-error"
                    )
                else:
                    response = await self._dispatch(request)
                writer.write(encode_message(response))
                await writer.drain()
                if request_is_shutdown(request, response):
                    self._stop.set()
                    break
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        self._requests_served += 1
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "health":
            return self._health()
        if op == "status":
            return self._status()
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "load":
            return await self._run_blocking(self._load, request)
        if op == "check":
            return await self._run_blocking(self._check, request)
        return error_response(f"unknown op {op!r}")

    async def _run_blocking(self, fn, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            return error_response(
                "daemon is draining; not admitting new work",
                kind="draining",
            )
        if self._inflight >= self.max_inflight:
            # Typed backpressure: the client learns *why* and when to
            # come back, instead of a dropped connection or an unbounded
            # queue hiding the overload.
            self.shed_count += 1
            return error_response(
                f"daemon is overloaded ({self._inflight} requests in "
                f"flight, limit {self.max_inflight})",
                kind="overloaded",
                inflight=self._inflight,
                max_inflight=self.max_inflight,
                retry_after=0.05,
            )
        loop = asyncio.get_running_loop()
        self._inflight += 1
        future = loop.run_in_executor(self._executor, fn, request)
        future.add_done_callback(self._note_request_done)
        try:
            if self.request_timeout is not None:
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(future), self.request_timeout
                    )
                except asyncio.TimeoutError:
                    # The worker thread cannot be killed; it keeps its
                    # in-flight slot until it actually finishes (see
                    # _note_request_done), so deadline storms shed load
                    # instead of silently stacking background work.
                    self.deadline_count += 1
                    return error_response(
                        f"request exceeded the {self.request_timeout}s "
                        "deadline",
                        kind="deadline",
                        timeout=self.request_timeout,
                    )
            return await future
        except InjectedCrash as exc:
            if self.crash_mode == "exit":
                # A simulated power loss: no cleanup, no goodbye — the
                # store entry stays interrupted mid-journal exactly as a
                # SIGKILL would leave it.
                os._exit(CRASH_EXIT_STATUS)
            # Raise mode: report the crash to the client first; the
            # handler stops the server only after the response is
            # flushed (stopping here races the write against server
            # teardown and can cancel the handler mid-response).
            self.crashed = str(exc)
            return error_response("injected crash", detail=str(exc), crashed=True)
        except Exception as exc:  # surface, don't kill the server
            return error_response(f"{type(exc).__name__}: {exc}")

    def _note_request_done(self, future) -> None:
        """Release the in-flight slot when the worker actually finishes.

        Runs on the event loop (asyncio executor futures schedule their
        callbacks there), so the admission check never races it.  The
        exception of a deadline-abandoned future must be retrieved here
        — and an InjectedCrash in exit mode still hard-kills the process
        even if its request already got a deadline response.
        """
        self._inflight -= 1
        if future.cancelled():
            return
        exc = None
        try:
            exc = future.exception()
        except asyncio.CancelledError:
            return
        if isinstance(exc, InjectedCrash) and self.crash_mode == "exit":
            os._exit(CRASH_EXIT_STATUS)

    def _health(self) -> Dict[str, Any]:
        """The cheap load/liveness report; never shed, never queued."""
        return {
            "ok": True,
            "op": "health",
            "draining": self._draining,
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "workers": self.num_workers,
            "request_timeout": self.request_timeout,
            "requests_served": self._requests_served,
            "shed": self.shed_count,
            "deadline_hits": self.deadline_count,
            "oversized_frames": self.oversized_count,
            "degraded_to_cold": self.store.degraded_to_cold,
            "crashed": self.crashed,
        }

    # ------------------------------------------------------------------
    # blocking op bodies (executor threads)
    # ------------------------------------------------------------------
    def _load(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro.checkers.driver import run_analyses
        from repro.frontend import compile_program

        name = request.get("name")
        if not name:
            return error_response("load needs a program name")
        if "sources" in request:
            source = [(str(m), str(s)) for m, s in request["sources"]]
        elif "source" in request:
            source = request["source"]
        else:
            return error_response("load needs source or sources")
        pg = compile_program(source, context_depth=request.get("context_depth"))
        ctx = run_analyses(pg, closure_store=self.store)
        pinned: Dict[str, List[int]] = {}
        closures: Dict[str, Dict[str, Any]] = {}
        for label, computation in _closures(ctx):
            pinned[label] = computation.pset.pin_hot()
            stats = computation.stats
            closures[label] = {
                "source": stats.closure_source,
                "supersteps": stats.num_supersteps,
                "final_edges": stats.final_edges,
                "delta_added_edges": stats.delta_added_edges,
                "delta_seed_partitions": stats.delta_seed_partitions,
                "resumed_from": stats.resumed_from_superstep,
                "pinned": len(pinned[label]),
            }
        with self._programs_lock:
            self._programs[name] = ctx
            self._pinned[name] = pinned
        return {
            "ok": True,
            "program": name,
            "vertices": pg.num_vertices,
            "edges": pg.num_edges,
            "closures": closures,
        }

    def _check(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro.checkers.driver import ALL_CHECKERS

        name = request.get("program")
        with self._programs_lock:
            ctx = self._programs.get(name)
        if ctx is None:
            return error_response(f"program {name!r} not loaded")
        wanted = request.get("checker")
        mode = request.get("mode", "augmented")
        if mode not in ("baseline", "augmented"):
            return error_response(f"unknown mode {mode!r}")
        classes = [
            cls for cls in ALL_CHECKERS if wanted in (None, cls.name)
        ]
        if not classes:
            return error_response(f"unknown checker {wanted!r}")
        reports = []
        for cls in classes:
            checker = cls()
            found = (
                checker.check_augmented(ctx)
                if mode == "augmented"
                else checker.check_baseline(ctx)
            )
            reports.extend(
                {
                    "checker": r.checker,
                    "function": r.function,
                    "module": r.module,
                    "line": r.line,
                    "variable": r.variable,
                    "message": r.message,
                    "interprocedural": r.interprocedural,
                }
                for r in found
            )
        return {
            "ok": True,
            "program": name,
            "mode": mode,
            "checkers": [cls.name for cls in classes],
            "reports": reports,
        }

    def _status(self) -> Dict[str, Any]:
        with self._programs_lock:
            items = list(self._programs.items())
            pinned = {name: dict(p) for name, p in self._pinned.items()}
        programs: Dict[str, Any] = {}
        for name, ctx in items:
            closures: Dict[str, Any] = {}
            for label, computation in _closures(ctx):
                pset = computation.pset
                closures[label] = {
                    "source": computation.stats.closure_source,
                    "partitions": pset.num_partitions,
                    "resident_bytes": pset.resident_bytes(),
                    "total_bytes": pset.total_bytes(),
                    "largest_partition_bytes": max(
                        (
                            int(pset.slot_state(pid)["nbytes"])
                            for pid in range(pset.num_partitions)
                        ),
                        default=0,
                    ),
                    "peak_resident_bytes": pset.residency.peak_resident_bytes,
                    "memory_budget": pset.memory_budget,
                    "pinned": pinned.get(name, {}).get(label, []),
                }
            programs[name] = {
                "vertices": ctx.pg.num_vertices,
                "edges": ctx.pg.num_edges,
                "closures": closures,
            }
        return {
            "ok": True,
            "programs": programs,
            "store_entries": len(self.store.entries()),
            "memory_budget": self.store.memory_budget,
            "workers": self.num_workers,
            "requests_served": self._requests_served,
            "crashed": self.crashed,
        }


def _closures(ctx) -> Iterator[Tuple[str, Any]]:
    """The four engine-backed computations bundled in a context."""
    yield "pointsto", ctx.pointsto.computation
    yield "nullflow", ctx.nullflow.computation
    yield "taintflow", ctx.taintflow.computation
    yield "taint", ctx.taint.computation


def request_is_shutdown(
    request: Dict[str, Any], response: Dict[str, Any]
) -> bool:
    if request.get("op") == "shutdown" and bool(response.get("ok")):
        return True
    # An injected crash in raise mode also stops the server — but only
    # after its error response has reached the client.
    return bool(response.get("crashed"))


class ServiceThread:
    """An in-process daemon for tests and benchmarks.

    Runs :meth:`ClosureDaemon.serve_forever` on a background thread and
    blocks :meth:`start` until the socket is bound, so callers get a
    connectable ``(host, port)`` back.  Use as a context manager; exit
    stops the server and joins the thread.
    """

    def __init__(self, daemon: ClosureDaemon, start_timeout: float = 30.0):
        self.daemon = daemon
        self.start_timeout = start_timeout
        self._thread: Optional[threading.Thread] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self.daemon.serve_forever, daemon=True, name="closure-daemon"
        )
        self._thread.start()
        if not self.daemon._started.wait(self.start_timeout):
            raise RuntimeError("daemon did not start in time")
        assert self.daemon.address is not None
        return self.daemon.address

    def stop(self, timeout: float = 30.0) -> None:
        self.daemon.request_stop()
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
