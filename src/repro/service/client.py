"""A thin synchronous client for the closure daemon.

One TCP connection, one JSON-lines conversation.  Each convenience
method sends a request and blocks for its response; responses with
``ok: false`` raise :class:`ServiceError` so callers never silently use
an error payload as data.  The client is *not* thread-safe — concurrent
query tests and benchmarks open one client per thread, which is also the
honest way to measure the daemon's concurrency.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.protocol import decode_message, encode_message


class ServiceError(RuntimeError):
    """The daemon answered with ``ok: false`` (or not at all)."""

    def __init__(self, message: str, response: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.response = response or {}


class ServiceClient:
    """Talks to one :class:`~repro.service.daemon.ClosureDaemon`.

    ``timeout`` bounds each request round-trip; ``load`` of a cold
    program runs a full closure on the other side, so the default is
    generous.
    """

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 600.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request; return its ``ok: true`` response."""
        self._fh.write(encode_message(message))
        self._fh.flush()
        line = self._fh.readline()
        if not line:
            raise ServiceError(
                f"connection closed before a response to {message.get('op')!r}"
            )
        response = decode_message(line)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown service error"), response
            )
        return response

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the protocol verbs
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})

    def load(
        self,
        name: str,
        source: Optional[str] = None,
        sources: Optional[Sequence[Tuple[str, str]]] = None,
        context_depth: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Compile + close + pin a program on the daemon under ``name``."""
        message: Dict[str, Any] = {"op": "load", "name": name}
        if sources is not None:
            message["sources"] = [list(pair) for pair in sources]
        elif source is not None:
            message["source"] = source
        if context_depth is not None:
            message["context_depth"] = context_depth
        return self.request(message)

    def check(
        self,
        program: str,
        checker: Optional[str] = None,
        mode: str = "augmented",
    ) -> List[Dict[str, Any]]:
        """Reports from one checker (or all) against a loaded program."""
        message: Dict[str, Any] = {"op": "check", "program": program, "mode": mode}
        if checker is not None:
            message["checker"] = checker
        return self.request(message)["reports"]

    def shutdown(self) -> None:
        """Stop the daemon (responds, then closes the server)."""
        self.request({"op": "shutdown"})
