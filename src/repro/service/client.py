"""A thin synchronous client for the closure daemon.

One TCP connection, one JSON-lines conversation.  Each convenience
method sends a request and blocks for its response; responses with
``ok: false`` raise :class:`ServiceError` so callers never silently use
an error payload as data.  The client is *not* thread-safe — concurrent
query tests and benchmarks open one client per thread, which is also the
honest way to measure the daemon's concurrency.

Transient failure is expected, not exceptional: the daemon sheds load
with typed ``kind: "overloaded"`` / ``"draining"`` responses, restarts
drop connections, and crash-mode daemons vanish mid-request.  The client
absorbs all of these under a bounded
:class:`~repro.util.retry.RetryPolicy` — exponential backoff with
jitter, reconnecting the socket between attempts — and surfaces
:class:`ServiceUnavailable` (a :class:`ServiceError`) only once the
attempt budget is spent.  Definitive errors (unknown op, bad program,
injected crash reports, deadline exceeded) are never retried: retrying a
deterministic failure only hides it.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.protocol import decode_message, encode_message
from repro.util.retry import RetryPolicy


class ServiceError(RuntimeError):
    """The daemon answered with ``ok: false`` (or not at all)."""

    def __init__(self, message: str, response: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.response = response or {}


class ServiceUnavailable(ServiceError):
    """The daemon stayed unreachable or shedding for every attempt."""


#: Typed error kinds the daemon uses for load shedding — worth backing
#: off and retrying, unlike definitive errors.
RETRYABLE_KINDS = frozenset({"overloaded", "draining"})

#: The default client policy: five attempts, 50 ms doubling backoff with
#: ±25 % jitter so retrying clients don't stampede back in lockstep.
#: One shared constructor (``RetryPolicy.for_client``) feeds this, the
#: distributed worker's reconnect path, and any future network caller —
#: the backoff defaults live in exactly one place.
DEFAULT_CLIENT_RETRY = RetryPolicy.for_client()


class ServiceClient:
    """Talks to one :class:`~repro.service.daemon.ClosureDaemon`.

    ``timeout`` bounds each request round-trip; ``load`` of a cold
    program runs a full closure on the other side, so the default is
    generous.  ``retry`` bounds how hard the client tries against a
    refused connection, a dropped socket, or a shedding daemon before
    raising :class:`ServiceUnavailable`; pass
    ``RetryPolicy(attempts=1)`` to disable retries entirely.  The
    ``retries`` attribute counts backoff retries actually taken — the
    chaos benchmark reads it for its telemetry.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 600.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_CLIENT_RETRY
        self.retries = 0
        self._sock: Optional[socket.socket] = None
        self._fh = None
        self._connect()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._fh = self._sock.makefile("rwb")

    def _disconnect(self) -> None:
        sock, fh = self._sock, self._fh
        self._sock = None
        self._fh = None
        try:
            if fh is not None:
                fh.close()
        except OSError:
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:
            pass

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One send/receive over the current (re)connected socket."""
        self._connect()
        assert self._fh is not None
        self._fh.write(encode_message(message))
        self._fh.flush()
        line = self._fh.readline()
        if not line:
            raise ServiceError(
                f"connection closed before a response to {message.get('op')!r}"
            )
        return decode_message(line)

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request; return its ``ok: true`` response.

        Connection failures (refused, reset, timed out, closed before a
        response) and typed shedding responses are retried under the
        client's policy with a fresh connection per attempt; exhaustion
        raises :class:`ServiceUnavailable` naming the first and last
        failure.  Any other ``ok: false`` response raises
        :class:`ServiceError` immediately.
        """
        delays = self.retry.jittered_delays()
        first_failure: Optional[str] = None
        while True:
            failure: Optional[str] = None
            response: Optional[Dict[str, Any]] = None
            try:
                response = self._roundtrip(message)
            except ServiceError as exc:
                self._disconnect()
                failure = str(exc)
            except (ConnectionError, socket.timeout, OSError) as exc:
                self._disconnect()
                failure = f"{type(exc).__name__}: {exc}"
            if response is not None:
                if response.get("ok"):
                    return response
                if response.get("kind") in RETRYABLE_KINDS:
                    failure = response.get("error", "service shedding load")
                else:
                    raise ServiceError(
                        response.get("error", "unknown service error"),
                        response,
                    )
            assert failure is not None
            if first_failure is None:
                first_failure = failure
            try:
                delay = next(delays)
            except StopIteration:
                detail = first_failure
                if failure != first_failure:
                    detail = f"{first_failure}; last: {failure}"
                raise ServiceUnavailable(
                    f"{message.get('op')!r} failed after "
                    f"{self.retry.attempts} attempts: {detail}",
                    response,
                ) from None
            self.retries += 1
            if delay > 0:
                time.sleep(delay)

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the protocol verbs
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def health(self) -> Dict[str, Any]:
        """The daemon's load report (in-flight, shed, drain state)."""
        return self.request({"op": "health"})

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})

    def load(
        self,
        name: str,
        source: Optional[str] = None,
        sources: Optional[Sequence[Tuple[str, str]]] = None,
        context_depth: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Compile + close + pin a program on the daemon under ``name``."""
        message: Dict[str, Any] = {"op": "load", "name": name}
        if sources is not None:
            message["sources"] = [list(pair) for pair in sources]
        elif source is not None:
            message["source"] = source
        if context_depth is not None:
            message["context_depth"] = context_depth
        return self.request(message)

    def check(
        self,
        program: str,
        checker: Optional[str] = None,
        mode: str = "augmented",
    ) -> List[Dict[str, Any]]:
        """Reports from one checker (or all) against a loaded program."""
        message: Dict[str, Any] = {"op": "check", "program": program, "mode": mode}
        if checker is not None:
            message["checker"] = checker
        return self.request(message)["reports"]

    def shutdown(self) -> None:
        """Stop the daemon (responds, then closes the server)."""
        self.request({"op": "shutdown"})
