"""The wire protocol: one JSON object per line, UTF-8, newline-framed.

Requests and responses share the same framing; every message is a JSON
object.  Requests carry an ``op`` field (``ping`` / ``status`` /
``load`` / ``check`` / ``shutdown``); responses always carry ``ok``
(bool) and, when ``ok`` is false, an ``error`` string.  Newline framing
keeps both ends trivial — the daemon reads with
``StreamReader.readline`` and the client with a socket ``makefile`` —
and any JSON-speaking tool can talk to the daemon with ``nc``.
"""

from __future__ import annotations

import json
from typing import Any, Dict

#: Upper bound on one framed message.  Sources for a whole workload ride
#: in a single ``load`` request, so this is generous; the daemon passes
#: it as the asyncio stream limit (the default 64 KiB is far too small).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed frame: not JSON, not an object, or too large."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message as a newline-terminated UTF-8 JSON line."""
    line = json.dumps(message, separators=(",", ":"), ensure_ascii=False)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame limit"
        )
    return data


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one framed line back into a message object."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame decodes to {type(message).__name__}, expected an object"
        )
    return message


def error_response(error: str, **extra: Any) -> Dict[str, Any]:
    """The canonical failure response."""
    out: Dict[str, Any] = {"ok": False, "error": error}
    out.update(extra)
    return out
