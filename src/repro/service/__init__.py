"""Closure-as-a-service: the daemon layer over the closure store.

The Graspan pipeline is batch-shaped — compile, close, check, exit —
but the closures it computes outlive any one run (DESIGN.md §14).  This
package keeps them warm: a small asyncio daemon owns a
:class:`~repro.engine.store.ClosureStore`, loads programs on request
(cache hit, incremental delta re-closure, or cold run — whichever is
cheapest), pins the hottest partitions resident under the configured
memory budget, and serves concurrent checker queries over a JSON-lines
socket protocol.

``python -m repro serve --store DIR`` starts one; :class:`ServiceClient`
talks to it; :class:`ServiceThread` embeds one in-process for tests and
benchmarks.

The tier is hardened for hostile conditions: the daemon bounds its
in-flight work and sheds the excess with typed ``overloaded`` responses,
enforces per-request deadlines, drains gracefully on ``SIGTERM``,
answers ``health`` probes even while saturated, and survives oversized
frames without dropping the connection; the store degrades corrupt cache
entries to cold recomputes with a one-shot warning; the client retries
transient failures under a bounded backoff-with-jitter policy and
surfaces :class:`ServiceUnavailable` only when the budget is spent.
"""

from repro.service.client import (
    DEFAULT_CLIENT_RETRY,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.daemon import ClosureDaemon, ServiceThread
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
)

__all__ = [
    "ClosureDaemon",
    "ServiceThread",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "DEFAULT_CLIENT_RETRY",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "MAX_MESSAGE_BYTES",
]
