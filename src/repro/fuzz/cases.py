"""Seeded generation of differential-fuzzing cases.

A :class:`FuzzCase` is one (graph, grammar) input the engine and the
Datalog oracle must agree on.  Two families are generated, both fully
deterministic in the seed:

**MiniC cases** reuse the evaluation-workload machinery
(:class:`~repro.workloads.synthetic.WorkloadSpec` /
:class:`~repro.workloads.synthetic.SyntheticProgramBuilder`) with small
randomized gadget mixes, then append *adversarial* shapes the curated
workloads never produce — deep alias chains (long ``p = q`` relays plus
heap store/load laundering) and wide NULL fan-ins — and compile the
result through the real frontend into one of the three analysis graphs
(pointer / NULL dataflow / taint).  Because the sources ride along on
the case, a failing MiniC case can be *shrunk* back to a minimal repro
(:mod:`repro.fuzz.shrink`).

**Raw cases** skip the frontend and hit the engine with degenerate graph
topologies directly: empty graphs, isolated vertices, all-self-loop
graphs, dense random multigraphs, and long label-alternating cycles —
under seed-permuted grammars (same productions, shuffled label interning
and production order) so no accidental dependence on label-id layout
survives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.grammar.grammar import FrozenGrammar, Grammar
from repro.graph.graph import MemGraph
from repro.workloads.synthetic import SyntheticProgramBuilder, WorkloadSpec

#: Which frontend extractor builds the case's input graph.
GRAPH_BUILDERS = ("pointer", "nullflow", "taint")


@dataclass
class FuzzCase:
    """One differential input: a graph, the grammar to close it under,
    and (for MiniC cases) the sources it was compiled from."""

    name: str
    seed: int
    grammar: FrozenGrammar
    graph: MemGraph
    #: MiniC provenance, shrinkable; ``None`` for raw graph cases.
    sources: Optional[List[Tuple[str, str]]] = None
    #: Extractor used to turn sources into the graph (MiniC cases only).
    graph_builder: Optional[str] = None
    notes: List[str] = field(default_factory=list)

    @property
    def is_minic(self) -> bool:
        return self.sources is not None


class CaseBuildError(RuntimeError):
    """The sources no longer compile into a usable graph (shrinking may
    produce these; the shrinker treats them as uninteresting)."""


# ---------------------------------------------------------------------------
# MiniC cases
# ---------------------------------------------------------------------------

def _adversarial_alias_chain(rng: random.Random, k: int) -> str:
    """A deep alias relay with heap laundering: one allocation flowing
    through ``depth`` copies, stored through one pointer and loaded back
    through an alias of an alias.  Long single-strand VF chains are the
    worst case for per-superstep delta propagation."""
    depth = rng.randint(6, 14)
    lines = [f"void adv_chain_{k}(void) {{", "    int *c0;"]
    for i in range(1, depth + 1):
        lines.append(f"    int *c{i};")
    lines += ["    int *cell;", "    int *mirror;", "    int out;"]
    lines.append("    c0 = malloc(8);")
    for i in range(1, depth + 1):
        lines.append(f"    c{i} = c{i - 1};")
    lines.append("    cell = malloc(8);")
    lines.append("    mirror = cell;")
    lines.append(f"    *cell = *c{depth};")
    lines.append("    out = *mirror;")
    lines.append("    if (out) { *c0 = out; }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _adversarial_null_fan(rng: random.Random, k: int) -> str:
    """A wide NULL fan-in: many producers merging into one consumer —
    stresses the dataflow closure's dedup rather than its depth."""
    width = rng.randint(3, 6)
    parts = []
    for i in range(width):
        parts.append(
            f"void *adv_src_{k}_{i}(int n) {{\n"
            "    int *p;\n"
            "    p = NULL;\n"
            f"    if (n > {i}) {{ p = malloc(8); }}\n"
            "    return p;\n"
            "}\n"
        )
    body = ["    int *m;"]
    for i in range(width):
        body.append(f"    m = adv_src_{k}_{i}({i});")
        body.append("    if (m) { *m = 1; }")
    parts.append(
        f"void adv_fan_{k}(void) {{\n" + "\n".join(body) + "\n}\n"
    )
    return "".join(parts)


def _adversarial_taint_relay(rng: random.Random, k: int) -> str:
    """Taint bounced through the heap twice, with a sanitizer decoy on a
    sibling path — adversarial for the TT closure's edge-break rule."""
    return (
        f"void adv_taint_{k}(void) {{\n"
        "    int *box;\n"
        "    int *lid;\n"
        "    int raw;\n"
        "    int hop;\n"
        "    int clean;\n"
        "    int fin;\n"
        "    box = malloc(8);\n"
        "    lid = box;\n"
        "    raw = input();\n"
        "    *box = raw;\n"
        "    hop = *lid;\n"
        "    clean = sanitize(hop);\n"
        "    *lid = hop;\n"
        "    fin = *box;\n"
        "    query(fin);\n"
        "    exec(clean);\n"
        "}\n"
    )


def _random_spec(
    seed: int, rng: random.Random, small: bool = False
) -> WorkloadSpec:
    """A tiny randomized workload spec: every gadget family rolls 0-2
    instances, the call DAG stays shallow so the oracle remains cheap.

    ``small`` shrinks everything further (single root, one layer, 0-1 of
    each gadget) — used for pointer cases, whose extended points-to
    grammar makes the pure-Python Datalog oracle by far the most
    expensive leg of the differential check.
    """
    spec = WorkloadSpec(
        name=f"fuzz-{seed}",
        seed=seed,
        num_roots=1 if small else rng.randint(1, 3),
        layers=1 if small else rng.randint(1, 3),
        fanout=1 if small else rng.randint(1, 2),
        layer_width=2 if small else rng.randint(2, 4),
        pointer_chain=rng.randint(1, 4),
        base_null_return_rate=rng.choice([0.0, 0.25, 0.75]),
    )
    gadget_cap = 1 if small else 2
    for name in (
        "null_deep", "null_decoys", "null_shallow_decoys", "null_safe",
        "untest", "untest_negative", "free_alias", "free_decoys",
        "lock_alias", "lock_decoys", "block_fp", "block_wrapper",
        "range_deep", "range_decoys", "size_direct", "size_flow",
        "size_decoys", "pnull_bugs", "pnull_decoys", "race_unguarded",
        "race_heap", "race_guarded_decoys", "taint_direct", "taint_flow",
        "taint_heap", "taint_sanitizer_decoys", "async_direct",
        "async_deep", "async_safe_decoys", "recursion_gadgets",
    ):
        setattr(spec, name, rng.randint(0, gadget_cap))
    spec.null_deep_chain = rng.randint(1, 3)
    spec.taint_flow_chain = rng.randint(1, 3)
    return spec


def build_graph(
    sources: Sequence[Tuple[str, str]], builder: str
) -> Tuple[MemGraph, FrozenGrammar]:
    """Compile MiniC ``sources`` and extract the ``builder`` graph.

    Raises :class:`CaseBuildError` when the sources no longer form a
    compilable program (the shrinker's probe path).
    """
    from repro.frontend import (
        compile_program,
        dataflow_graph,
        pointer_graph,
        taint_graph,
    )
    from repro.grammar.builtin import (
        nullflow_grammar,
        pointsto_grammar_extended,
        taint_grammar,
    )

    try:
        pg = compile_program(list(sources))
    except Exception as exc:  # parse/lower/inline failures alike
        raise CaseBuildError(f"sources do not compile: {exc}") from exc
    if builder == "pointer":
        return pointer_graph(pg), pointsto_grammar_extended()
    if builder == "nullflow":
        return dataflow_graph(pg), nullflow_grammar()
    if builder == "taint":
        return taint_graph(pg), taint_grammar()
    raise ValueError(f"unknown graph builder {builder!r}")


def minic_case(seed: int) -> FuzzCase:
    """The seeded MiniC case: randomized workload + adversarial shapes."""
    rng = random.Random(("minic", seed).__repr__())
    builder = rng.choice(GRAPH_BUILDERS)
    spec = _random_spec(seed, rng, small=builder == "pointer")
    workload = SyntheticProgramBuilder(spec).build()
    sources = list(workload.sources)
    notes = [f"spec layers={spec.layers} fanout={spec.fanout}"]
    extras = []
    if rng.random() < 0.8:
        extras.append(_adversarial_alias_chain(rng, seed))
        notes.append("adversarial: deep alias chain")
    if rng.random() < 0.5:
        extras.append(_adversarial_null_fan(rng, seed))
        notes.append("adversarial: wide NULL fan-in")
    if rng.random() < 0.5:
        extras.append(_adversarial_taint_relay(rng, seed))
        notes.append("adversarial: heap taint relay")
    if extras:
        sources.append(("adversarial", "".join(extras)))
    notes.append(f"graph builder: {builder}")
    graph, grammar = build_graph(sources, builder)
    return FuzzCase(
        name=f"minic-{seed}-{builder}",
        seed=seed,
        grammar=grammar,
        graph=graph,
        sources=sources,
        graph_builder=builder,
        notes=notes,
    )


def rebuild(case: FuzzCase, sources: Sequence[Tuple[str, str]]) -> FuzzCase:
    """The same case over different (typically shrunk) sources."""
    assert case.graph_builder is not None
    graph, grammar = build_graph(sources, case.graph_builder)
    return replace(
        case, graph=graph, grammar=grammar, sources=list(sources)
    )


# ---------------------------------------------------------------------------
# raw graph cases under permuted grammars
# ---------------------------------------------------------------------------

def _permuted_dyck(rng: random.Random) -> FrozenGrammar:
    """Dyck-1 with seed-shuffled label interning and production order."""
    g = Grammar()
    for name in rng.sample(["OP", "CL", "S"], 3):
        g.label(name)
    prods = [
        lambda: g.add_constraint("S", "OP", "CL"),
        lambda: g.add_rule("S", ["OP", "S", "CL"]),
        lambda: g.add_constraint("S", "S", "S"),
    ]
    rng.shuffle(prods)
    for add in prods:
        add()
    return g.freeze()


def _permuted_reach(rng: random.Random) -> FrozenGrammar:
    g = Grammar()
    for name in rng.sample(["E", "R"], 2):
        g.label(name)
    prods = [
        lambda: g.add_constraint("R", "E"),
        lambda: g.add_constraint("R", "R", "E"),
    ]
    rng.shuffle(prods)
    for add in prods:
        add()
    return g.freeze()


#: Terminal labels the raw topologies draw edges from, per grammar.
_RAW_TERMINALS = {"dyck": ["OP", "CL"], "reach": ["E"]}


def raw_case(seed: int) -> FuzzCase:
    """The seeded raw-topology case: degenerate shapes, permuted grammar."""
    rng = random.Random(("raw", seed).__repr__())
    which = rng.choice(["dyck", "reach"])
    grammar = _permuted_dyck(rng) if which == "dyck" else _permuted_reach(rng)
    terminals = _RAW_TERMINALS[which]
    shape = rng.choice(
        ["empty", "selfloops", "dense", "alternating-cycle", "star"]
    )
    n = rng.randint(1, 12)
    edges: List[Tuple[int, int, int]] = []
    if shape == "empty":
        pass
    elif shape == "selfloops":
        for v in range(n):
            for li in range(len(terminals)):
                edges.append((v, v, li))
    elif shape == "dense":
        for _ in range(rng.randint(1, 4 * n)):
            edges.append(
                (
                    rng.randrange(n),
                    rng.randrange(n),
                    rng.randrange(len(terminals)),
                )
            )
    elif shape == "alternating-cycle":
        for v in range(n):
            edges.append(((v), (v + 1) % n, v % len(terminals)))
    elif shape == "star":
        hub = rng.randrange(n)
        for v in range(n):
            if v != hub:
                edges.append((hub, v, rng.randrange(len(terminals))))
                if rng.random() < 0.5:
                    edges.append((v, hub, rng.randrange(len(terminals))))
    graph = MemGraph.from_edges(edges, num_vertices=n, label_names=terminals)
    return FuzzCase(
        name=f"raw-{seed}-{which}-{shape}",
        seed=seed,
        grammar=grammar,
        graph=graph,
        notes=[f"shape: {shape} over {n} vertices, grammar {which} (permuted)"],
    )


def case_for_seed(seed: int) -> FuzzCase:
    """The canonical per-seed case: raw topologies on every 3rd seed,
    compiled MiniC programs otherwise."""
    return raw_case(seed) if seed % 3 == 0 else minic_case(seed)
