"""Test-case shrinking: a failing MiniC case down to a minimal repro.

A differential failure on a generated workload is useless at 2000 lines;
the debugging loop wants the smallest program that still disagrees.  The
shrinker works at the granularity the frontend understands — *top-level
units* (function definitions and global declarations), recovered from
the generated source by brace counting — and runs the classic ddmin
reduction: try removing large chunks first, re-check the failure
predicate, halve the chunk size on failure to reduce.  The result is
1-minimal: removing any single remaining unit makes the failure
disappear (or the program uncompilable, which counts as disappearing).

The predicate is supplied by the caller (typically "rebuild the case
from these sources and re-run the failing config against the oracle"),
so the same machinery shrinks genuine engine bugs and the deliberately
broken oracles the test suite uses to prove minimality.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

Unit = Tuple[str, str]  # (module, top-level source chunk)


def split_toplevel(source: str) -> List[str]:
    """Split MiniC source into top-level units by brace depth.

    A unit is one function definition (depth returns to zero on its
    closing ``}``) or one brace-free statement run (globals).  Blank
    lines attach to the preceding unit; the concatenation of the units
    reproduces the source.
    """
    units: List[str] = []
    current: List[str] = []
    depth = 0
    saw_brace = False
    for line in source.splitlines(keepends=True):
        current.append(line)
        depth += line.count("{") - line.count("}")
        if depth > 0:
            saw_brace = True
            continue
        stripped = line.strip()
        closes = saw_brace and stripped.endswith("}")
        plain_stmt = not saw_brace and stripped.endswith(";")
        if closes or plain_stmt:
            units.append("".join(current))
            current = []
            saw_brace = False
    if "".join(current).strip():
        units.append("".join(current))
    return units


def to_units(sources: Sequence[Tuple[str, str]]) -> List[Unit]:
    """Flatten (module, source) pairs into an ordered unit list."""
    units: List[Unit] = []
    for module, source in sources:
        for chunk in split_toplevel(source):
            units.append((module, chunk))
    return units


def to_sources(units: Sequence[Unit]) -> List[Tuple[str, str]]:
    """Reassemble a unit list into (module, source) pairs.

    Module order follows first appearance; modules whose units were all
    removed vanish entirely.
    """
    by_module: Dict[str, List[str]] = {}
    order: List[str] = []
    for module, chunk in units:
        if module not in by_module:
            by_module[module] = []
            order.append(module)
        by_module[module].append(chunk)
    return [(m, "".join(by_module[m])) for m in order]


def ddmin(
    units: List[Unit],
    still_fails: Callable[[List[Unit]], bool],
    max_probes: int = 2000,
) -> List[Unit]:
    """Classic delta debugging over the unit list.

    ``still_fails(units)`` must be True for the input list; the return
    value is a 1-minimal sublist for which it is still True.  The probe
    budget bounds pathological cases; the reduction so far is returned
    when it runs out.
    """
    assert still_fails(units), "ddmin needs a failing input to shrink"
    probes = 0
    n = 2
    while len(units) >= 2:
        chunk = max(1, len(units) // n)
        subsets = [units[i : i + chunk] for i in range(0, len(units), chunk)]
        reduced = False
        for i, subset in enumerate(subsets):
            complement = [
                u for j, s in enumerate(subsets) if j != i for u in s
            ]
            if not complement:
                continue
            probes += 1
            if probes > max_probes:
                return units
            if still_fails(complement):
                units = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(units):
                break
            n = min(len(units), n * 2)
    return units


def shrink_sources(
    sources: Sequence[Tuple[str, str]],
    still_fails: Callable[[List[Tuple[str, str]]], bool],
    max_probes: int = 2000,
) -> List[Tuple[str, str]]:
    """Shrink (module, source) pairs under a source-level predicate."""
    units = to_units(sources)
    minimal = ddmin(
        units,
        lambda us: still_fails(to_sources(us)),
        max_probes=max_probes,
    )
    return to_sources(minimal)


def write_artifact(
    directory: Path,
    *,
    seed: int,
    case_name: str,
    config_name: str,
    message: str,
    sources: Sequence[Tuple[str, str]] = (),
    notes: Sequence[str] = (),
    original_loc: int = 0,
) -> Path:
    """Persist a minimized repro: the MiniC modules plus ``repro.json``.

    Returns the artifact directory (created if needed).  Raw-graph cases
    pass no sources; the JSON alone carries the seed to replay with
    ``python -m repro fuzz --seeds <seed> ...``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    shrunk_loc = 0
    for module, source in sources:
        (directory / f"{module}.c").write_text(source)
        shrunk_loc += source.count("\n") + 1
    meta = {
        "seed": seed,
        "case": case_name,
        "config": config_name,
        "error": message,
        "notes": list(notes),
        "modules": [m for m, _ in sources],
        "original_loc": original_loc,
        "shrunk_loc": shrunk_loc,
        "replay": f"python -m repro fuzz --seeds {seed} --artifacts <dir>",
    }
    (directory / "repro.json").write_text(json.dumps(meta, indent=2))
    return directory
