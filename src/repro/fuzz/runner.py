"""The fuzzing campaign driver: seeds in, verdicts and artifacts out.

For every seed the runner generates the case, computes the Datalog
oracle once, checks the whole engine-configuration matrix against it
(:func:`repro.fuzz.diff.check_case`), then re-runs the case *composed
with a seeded fault plan* — crash-at-write, bit-flips, errno schedules —
which must resume byte-identical or be detected loudly.  A failing MiniC
case is shrunk to a 1-minimal repro (:mod:`repro.fuzz.shrink`) and
written out as an artifact directory before the campaign moves on, so a
red CI run always leaves a replayable, human-sized program behind.

``python -m repro fuzz`` is a thin wrapper over :func:`fuzz`.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fuzz.cases import (
    CaseBuildError,
    FuzzCase,
    case_for_seed,
    rebuild,
)
from repro.fuzz.diff import (
    DEFAULT_CONFIGS,
    DifferentialMismatch,
    EngineConfig,
    check_case,
    oracle_closure,
)
from repro.fuzz.shrink import shrink_sources, write_artifact
from repro.util.faults import FaultPlan


@dataclass
class CaseResult:
    """The verdict for one seed."""

    seed: int
    case_name: str
    status: str  # "ok" | "fail"
    seconds: float = 0.0
    error: str = ""
    failing_config: str = ""
    artifact: Optional[Path] = None
    #: config name -> outcome status ("ok" / "corruption-detected").
    outcomes: Dict[str, str] = field(default_factory=dict)
    fault_outcomes: Dict[str, str] = field(default_factory=dict)
    fault_plan: str = ""


@dataclass
class FuzzReport:
    """The campaign summary the CLI prints and CI gates on."""

    results: List[CaseResult] = field(default_factory=list)
    configs: Tuple[str, ...] = ()

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if r.status != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {len(self.results)} seeds x {len(self.configs)} configs "
            f"({', '.join(self.configs)}): "
            f"{len(self.results) - len(self.failures)} ok, "
            f"{len(self.failures)} failing"
        ]
        for r in self.results:
            mark = "ok  " if r.status == "ok" else "FAIL"
            fault = (
                f" fault[{r.fault_plan}]="
                + ",".join(sorted(set(r.fault_outcomes.values())))
                if r.fault_outcomes
                else ""
            )
            lines.append(
                f"  {mark} seed {r.seed:>4} {r.case_name:<28}"
                f" {r.seconds:6.2f}s{fault}"
            )
            if r.status != "ok":
                lines.append(f"       {r.error}")
                if r.artifact is not None:
                    lines.append(f"       repro: {r.artifact}")
        return "\n".join(lines)


def _fault_plan_for(seed: int, fault_offset: int) -> FaultPlan:
    """The deterministic per-case fault plan (offset shifts the whole
    campaign, mirroring the REPRO_FAULT_SEED convention)."""
    return FaultPlan.random(10007 * fault_offset + seed)


def _shrink_failure(
    case: FuzzCase,
    failure: DifferentialMismatch,
    configs: Sequence[EngineConfig],
    workroot: Path,
    fault_plan: Optional[FaultPlan],
    oracle_fn: Callable,
    max_probes: int,
) -> List[Tuple[str, str]]:
    """Reduce the failing case's sources while the mismatch persists."""
    failing = [c for c in configs if c.name == failure.config.name]
    probe_root = workroot / "shrink"
    counter = [0]

    def still_fails(sources: List[Tuple[str, str]]) -> bool:
        try:
            candidate = rebuild(case, sources)
        except CaseBuildError:
            return False
        counter[0] += 1
        probe_dir = probe_root / f"probe-{counter[0]}"
        try:
            check_case(
                candidate,
                tuple(failing),
                probe_dir,
                oracle=oracle_fn(candidate),
                fault_plan=fault_plan,
            )
            return False
        except DifferentialMismatch:
            return True
        except Exception:
            # A probe that errors out (rather than mismatching) is not
            # the failure being chased; keep those units.
            return False
        finally:
            shutil.rmtree(probe_dir, ignore_errors=True)

    assert case.sources is not None
    return shrink_sources(case.sources, still_fails, max_probes=max_probes)


def run_seed(
    seed: int,
    configs: Tuple[EngineConfig, ...] = DEFAULT_CONFIGS,
    workroot: Optional[Path] = None,
    artifact_dir: Optional[Path] = None,
    fault: bool = True,
    fault_offset: int = 0,
    case_fn: Callable[[int], FuzzCase] = case_for_seed,
    oracle_fn: Callable = oracle_closure,
    shrink: bool = True,
    max_shrink_probes: int = 400,
) -> CaseResult:
    """Fuzz one seed: plain matrix, then the fault-composed re-run."""
    started = time.perf_counter()
    owns_workroot = workroot is None
    if owns_workroot:
        workroot = Path(tempfile.mkdtemp(prefix=f"fuzz-{seed}-"))
    try:
        case = case_fn(seed)
        result = CaseResult(seed=seed, case_name=case.name, status="ok")
        fault_plan = _fault_plan_for(seed, fault_offset) if fault else None
        if fault:
            result.fault_plan = _describe_plan(fault_plan)
        try:
            oracle = oracle_fn(case)
            outcomes = check_case(case, configs, workroot / "plain", oracle=oracle)
            result.outcomes = {k: o.status for k, o in outcomes.items()}
            if fault:
                # The chaos leg: the serial reference config re-run under
                # the seeded fault plan must agree with the same oracle.
                fault_outcomes = check_case(
                    case,
                    configs[:1],
                    workroot / "fault",
                    oracle=oracle,
                    fault_plan=fault_plan,
                )
                result.fault_outcomes = {
                    k: o.status for k, o in fault_outcomes.items()
                }
        except DifferentialMismatch as failure:
            result.status = "fail"
            result.error = str(failure)
            result.failing_config = failure.config.name
            sources = case.sources
            if shrink and case.is_minic:
                plan = (
                    fault_plan
                    if failure.config.name in result.fault_outcomes
                    else None
                )
                sources = _shrink_failure(
                    case,
                    failure,
                    configs,
                    workroot,
                    plan,
                    oracle_fn,
                    max_shrink_probes,
                )
            if artifact_dir is not None:
                result.artifact = write_artifact(
                    Path(artifact_dir) / f"seed-{seed}-{failure.config.name}",
                    seed=seed,
                    case_name=case.name,
                    config_name=failure.config.name,
                    message=str(failure),
                    sources=sources or (),
                    notes=case.notes,
                    original_loc=sum(
                        s.count("\n") + 1 for _, s in (case.sources or ())
                    ),
                )
        result.seconds = time.perf_counter() - started
        return result
    finally:
        if owns_workroot:
            shutil.rmtree(workroot, ignore_errors=True)


def _describe_plan(plan: Optional[FaultPlan]) -> str:
    if plan is None:
        return ""
    for name in (
        "crash_at_write",
        "flip_byte_at_write",
        "crash_before_commit",
        "crash_after_commit",
        "kill_worker_at_dispatch",
    ):
        value = getattr(plan, name)
        if value is not None:
            return f"{name}={value}"
    if plan.errno_at_write:
        return f"errno_at_write={plan.errno_at_write}"
    if plan.errno_at_read:
        return f"errno_at_read={plan.errno_at_read}"
    return "empty"


def fuzz(
    seeds: Sequence[int],
    configs: Tuple[EngineConfig, ...] = DEFAULT_CONFIGS,
    artifact_dir: Optional[Path] = None,
    fault: bool = True,
    fault_offset: int = 0,
    case_fn: Callable[[int], FuzzCase] = case_for_seed,
    oracle_fn: Callable = oracle_closure,
    shrink: bool = True,
    on_result: Optional[Callable[[CaseResult], None]] = None,
) -> FuzzReport:
    """Run the campaign over ``seeds``; never raises on case failures."""
    report = FuzzReport(configs=tuple(c.name for c in configs))
    for seed in seeds:
        result = run_seed(
            seed,
            configs=configs,
            artifact_dir=artifact_dir,
            fault=fault,
            fault_offset=fault_offset,
            case_fn=case_fn,
            oracle_fn=oracle_fn,
            shrink=shrink,
        )
        report.results.append(result)
        if on_result is not None:
            on_result(result)
    return report
