"""Differential closure checking: the engine vs the Datalog oracle.

One :class:`FuzzCase` is closed twice — by the semi-naive Datalog engine
(:mod:`repro.baselines.datalog`, the independent semantics) and by the
Graspan engine under every :class:`EngineConfig` in the matrix (backend
× pipeline × memory budget × cold/resume).  Three properties are
enforced per case:

* **oracle equality** — the engine's closure, as a set of
  ``(src, dst, label)`` facts, equals the Datalog fixpoint;
* **config byte-identity** — every configuration produces the same
  canonical ``(src, keys)`` arrays (the repo-wide byte-identity
  invariant, here checked across the whole matrix at once);
* **fault survival** — re-run composed with a seeded
  :class:`~repro.util.faults.FaultPlan`, the case must either complete
  (transient errnos absorbed by the retry policy), resume byte-identical
  after an injected crash, or *detect* injected corruption loudly —
  never return a wrong closure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.baselines.datalog import run_datalog
from repro.engine.engine import GraspanEngine, align_graph_labels
from repro.fuzz.cases import FuzzCase
from repro.partition.storage import PartitionCorruptError
from repro.util.faults import FaultInjector, FaultPlan, InjectedCrash

Fact = Tuple[int, int, int]


@dataclass(frozen=True)
class EngineConfig:
    """One point of the engine configuration matrix."""

    name: str
    backend: Optional[str] = None  # None -> engine default (serial)
    num_threads: int = 1
    pipeline: Optional[bool] = False
    memory_budget: Optional[int] = None
    #: ``None`` derives a size that forces several partitions.
    max_edges_per_partition: Optional[int] = None
    #: Crash after the first manifest commit, then resume — exercises the
    #: checkpoint/restore path on every single case.
    resume: bool = False

    def describe(self) -> str:
        bits = [self.backend or "serial"]
        if self.pipeline:
            bits.append("pipeline")
        if self.memory_budget is not None:
            bits.append(f"budget={self.memory_budget}")
        if self.resume:
            bits.append("crash+resume")
        return "+".join(bits)


#: The default matrix: serial reference, threaded pipelined, the sparse
#: matmul kernel, and a budgeted crash/resume configuration.
DEFAULT_CONFIGS: Tuple[EngineConfig, ...] = (
    EngineConfig("serial"),
    EngineConfig("thread-pipeline", backend="thread", num_threads=2, pipeline=True),
    EngineConfig("matmul", backend="matmul"),
    EngineConfig(
        "budget-resume", memory_budget=256 * 1024, resume=True
    ),
)

#: The widened matrix for the CLI / CI sweep: adds the process pool, a
#: degenerate-partition configuration (every partition near-minimal),
#: and the coordinator/worker lease protocol with two in-process workers
#: (``workers`` defaults to ``num_threads`` for the distributed tier).
FULL_CONFIGS: Tuple[EngineConfig, ...] = DEFAULT_CONFIGS + (
    EngineConfig("process", backend="process", num_threads=2),
    EngineConfig("degenerate-partitions", max_edges_per_partition=2),
    EngineConfig("distributed-2w", backend="distributed", num_threads=2),
)


class DifferentialMismatch(AssertionError):
    """The engine and the oracle (or two configs) disagree on a closure."""

    def __init__(
        self,
        case: FuzzCase,
        config: EngineConfig,
        message: str,
        missing: FrozenSet[Fact] = frozenset(),
        extra: FrozenSet[Fact] = frozenset(),
    ) -> None:
        detail = message
        if missing:
            detail += f"; {len(missing)} oracle facts missing from the engine"
        if extra:
            detail += f"; {len(extra)} engine facts unknown to the oracle"
        super().__init__(f"[{case.name} / {config.name}] {detail}")
        self.case = case
        self.config = config
        self.missing = missing
        self.extra = extra


@dataclass
class RunOutcome:
    """One engine run of one case under one config."""

    status: str  # "ok" | "corruption-detected"
    facts: Optional[FrozenSet[Fact]] = None
    src: Optional[np.ndarray] = None
    keys: Optional[np.ndarray] = None
    supersteps: int = 0
    resumed: bool = False
    detail: str = ""


def oracle_closure(case: FuzzCase) -> FrozenSet[Fact]:
    """The Datalog fixpoint of the case, as grammar-interned facts."""
    graph = align_graph_labels(case.graph, case.grammar)
    result = run_datalog(
        graph,
        case.grammar,
        memory_budget_bytes=1 << 30,
        time_budget_seconds=600.0,
    )
    if result.status != "ok":
        raise RuntimeError(
            f"oracle did not finish on {case.name}: {result.status}"
        )
    return frozenset(
        (x, y, case.grammar.label_id(rel))
        for rel, pairs in result.relations.items()
        for x, y in pairs
    )


def _derived_max_edges(case: FuzzCase, config: EngineConfig) -> int:
    if config.max_edges_per_partition is not None:
        return config.max_edges_per_partition
    # Several partitions even on small graphs, so the out-of-core paths
    # (scheduler, residency, checkpoints) all genuinely execute.
    return max(4, case.graph.num_edges // 3)


def _make_engine(
    case: FuzzCase,
    config: EngineConfig,
    workdir: Path,
    injector: Optional[FaultInjector] = None,
) -> GraspanEngine:
    return GraspanEngine(
        case.grammar,
        max_edges_per_partition=_derived_max_edges(case, config),
        workdir=workdir,
        num_threads=config.num_threads,
        parallel_backend=config.backend,
        memory_budget=config.memory_budget,
        pipeline=config.pipeline,
        checkpoint=True,
        fault_injector=injector,
    )


def run_config(
    case: FuzzCase,
    config: EngineConfig,
    workdir: Path,
    fault_plan: Optional[FaultPlan] = None,
) -> RunOutcome:
    """Run ``case`` under ``config``; compose ``fault_plan`` if given.

    Crashes (planned by the config's ``resume`` leg or by the fault
    plan) are resumed with a clean engine over the same workdir; the
    resulting closure is the outcome.  Injected corruption that is
    *detected* (:class:`PartitionCorruptError`) is a legitimate outcome
    — returning a wrong closure is the only failure.
    """
    workdir.mkdir(parents=True, exist_ok=True)
    graph = align_graph_labels(case.graph, case.grammar)

    plan = fault_plan if fault_plan is not None else FaultPlan()
    if config.resume:
        # Crash right after the post-preprocess commit: the resumed run
        # replays every superstep from the committed watermark.
        plan = replace(plan, crash_after_commit=1)
    injector = FaultInjector(plan) if not plan.empty() else None

    resumed = False
    detail = ""
    try:
        computation = _make_engine(case, config, workdir, injector).run(graph)
    except InjectedCrash as crash:
        detail = f"crashed ({crash}), resumed"
        try:
            computation = _make_engine(case, config, workdir).run(
                graph, resume=True
            )
        except PartitionCorruptError as exc:
            if fault_plan is not None and fault_plan.flip_byte_at_write:
                return RunOutcome(
                    status="corruption-detected", detail=str(exc)
                )
            raise
        resumed = computation.stats.resumed_from_superstep is not None
    except PartitionCorruptError as exc:
        if fault_plan is not None and fault_plan.flip_byte_at_write:
            return RunOutcome(status="corruption-detected", detail=str(exc))
        raise

    try:
        closure = computation.to_memgraph()
        facts = frozenset(computation.pset.iter_all_edges())
    except PartitionCorruptError as exc:
        # A flipped partition that no superstep re-read surfaces only
        # when the closure is read back — still a loud detection.
        if fault_plan is not None and fault_plan.flip_byte_at_write:
            return RunOutcome(status="corruption-detected", detail=str(exc))
        raise
    return RunOutcome(
        status="ok",
        facts=facts,
        src=np.asarray(closure.src).copy(),
        keys=np.asarray(closure.keys).copy(),
        supersteps=computation.stats.num_supersteps,
        resumed=resumed,
        detail=detail,
    )


def check_case(
    case: FuzzCase,
    configs: Tuple[EngineConfig, ...],
    workroot: Path,
    oracle: Optional[FrozenSet[Fact]] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Dict[str, RunOutcome]:
    """Differentially check one case across the whole config matrix.

    Raises :class:`DifferentialMismatch` on the first disagreement.
    Returns the per-config outcomes (for reporting) on success.
    """
    if oracle is None:
        oracle = oracle_closure(case)
    outcomes: Dict[str, RunOutcome] = {}
    reference: Optional[RunOutcome] = None
    for config in configs:
        outcome = run_config(
            case, config, workroot / config.name, fault_plan=fault_plan
        )
        outcomes[config.name] = outcome
        if outcome.status == "corruption-detected":
            continue
        assert outcome.facts is not None
        if outcome.facts != oracle:
            raise DifferentialMismatch(
                case,
                config,
                "engine closure differs from the Datalog oracle",
                missing=oracle - outcome.facts,
                extra=outcome.facts - oracle,
            )
        if reference is None:
            reference = outcome
        elif not (
            np.array_equal(reference.src, outcome.src)
            and np.array_equal(reference.keys, outcome.keys)
        ):
            raise DifferentialMismatch(
                case,
                config,
                "closure is not byte-identical to the first configuration",
            )
    return outcomes
