"""Differential fuzzing and chaos testing for the closure engine.

Seeded case generation (:mod:`repro.fuzz.cases`), engine-vs-Datalog
differential checking across the configuration matrix
(:mod:`repro.fuzz.diff`), ddmin test-case shrinking
(:mod:`repro.fuzz.shrink`), and the campaign driver behind
``python -m repro fuzz`` (:mod:`repro.fuzz.runner`).
"""

from repro.fuzz.cases import (
    GRAPH_BUILDERS,
    CaseBuildError,
    FuzzCase,
    build_graph,
    case_for_seed,
    minic_case,
    raw_case,
    rebuild,
)
from repro.fuzz.diff import (
    DEFAULT_CONFIGS,
    FULL_CONFIGS,
    DifferentialMismatch,
    EngineConfig,
    RunOutcome,
    check_case,
    oracle_closure,
    run_config,
)
from repro.fuzz.runner import CaseResult, FuzzReport, fuzz, run_seed
from repro.fuzz.shrink import (
    ddmin,
    shrink_sources,
    split_toplevel,
    write_artifact,
)

__all__ = [
    "GRAPH_BUILDERS",
    "CaseBuildError",
    "FuzzCase",
    "build_graph",
    "case_for_seed",
    "minic_case",
    "raw_case",
    "rebuild",
    "DEFAULT_CONFIGS",
    "FULL_CONFIGS",
    "DifferentialMismatch",
    "EngineConfig",
    "RunOutcome",
    "check_case",
    "oracle_closure",
    "run_config",
    "CaseResult",
    "FuzzReport",
    "fuzz",
    "run_seed",
    "ddmin",
    "shrink_sources",
    "split_toplevel",
    "write_artifact",
]
