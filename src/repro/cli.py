"""Command-line interface: ``python -m repro <subcommand>``.

Nine subcommands cover the system's main entry points:

``analyze``
    Run the pointer/alias + dataflow analyses and the checkers on a
    MiniC source file and print the reports — Graspan as the "backend
    analysis engine" for checkers (§1.4).

``closure``
    The raw engine: a text edge-list graph plus a text grammar file in,
    the grammar-guided transitive closure out (optionally written back
    as a text edge list), with the Table 5 style statistics.

``races``
    Run the interprocedural lockset race detector on a MiniC source
    file: one pointer-closure computation, then threads, locksets, and
    race reports derived from it without further engine runs.

``taint``
    Run the grammar-driven taint/injection analysis on a MiniC source
    file: ``input()`` sources, ``query()``/``exec()`` sinks,
    ``sanitize()`` barriers; unsanitized source-to-sink flows are
    reported with their context counts.

``workload``
    Generate one of the evaluation codebases to a directory (MiniC
    sources per module plus the ground-truth JSON).

``coordinator`` / ``worker``
    Distributed supersteps (DESIGN.md §16): the coordinator owns the
    scheduler, DDM, and checkpoint manifest for one closure and hands
    out pair leases over TCP; each worker shares nothing with it but
    the partition files in the workdir, joins its leased pair locally,
    and ships the new-edge delta back.  ``closure --backend
    distributed`` runs the same protocol self-contained with in-process
    workers.

``serve``
    Closure-as-a-service: start the daemon over a persistent closure
    store.  Programs loaded through it resolve as cache hits or
    incremental delta re-closures when possible; checker queries are
    served concurrently against pinned-resident closures, with bounded
    in-flight admission, optional per-request deadlines, and graceful
    ``SIGTERM`` drain.

``fuzz``
    Seeded differential fuzzing: generate adversarial MiniC programs
    and degenerate raw graphs, close them under every engine
    configuration in the matrix, compare against the Datalog oracle,
    re-run composed with seeded fault plans, and shrink any failure to
    a minimal repro artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


def _positive_int(text: str) -> int:
    """argparse type: an integer strictly greater than zero."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type: a finite float strictly greater than zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not value > 0 or value != value or value == float("inf"):
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text}"
        )
    return value


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.checkers import ALL_CHECKERS, check_program
    from repro.frontend import compile_program

    source = Path(args.file).read_text()
    pg = compile_program(
        source,
        module=args.module,
        context_depth=args.context_depth,
    )
    print(
        f"{args.file}: {pg.num_vertices} vertices, {pg.num_edges} edges, "
        f"{pg.inline_count} inlines",
        file=sys.stderr,
    )
    result = check_program(pg)
    wanted = set(args.checkers.split(",")) if args.checkers else None
    modes = ("baseline", "augmented") if args.mode == "both" else (args.mode,)
    exit_code = 0
    for mode in modes:
        table = result.baseline if mode == "baseline" else result.augmented
        for cls in ALL_CHECKERS:
            if wanted is not None and cls.name not in wanted:
                continue
            for report in table.get(cls.name, []):
                exit_code = 1
                print(
                    f"[{mode[:2].upper()}:{report.checker}] "
                    f"{report.function}:{report.line}: {report.message}"
                )
    return exit_code


def _cmd_closure(args: argparse.Namespace) -> int:
    from repro.engine import GraspanEngine
    from repro.grammar import parse_grammar_file
    from repro.graph import read_text, write_text
    from repro.util.faults import FaultInjector, FaultPlan
    from repro.util.memory import MemoryBudgetExceeded, parse_memory_size

    if args.resume and not args.workdir:
        print("error: --resume requires --workdir", file=sys.stderr)
        return 2
    grammar = parse_grammar_file(args.grammar)
    graph = read_text(args.graph)
    memory_budget = (
        parse_memory_size(args.memory_budget) if args.memory_budget else None
    )
    fault_plan = FaultPlan.from_env()
    injector = None
    if not fault_plan.empty():
        injector = FaultInjector(fault_plan)
        print(f"fault injection active: {fault_plan}", file=sys.stderr)
    distributed = None
    if args.backend == "distributed":
        distributed = {
            "workers": args.workers or args.threads,
            "lease_timeout": args.lease_timeout,
            "max_inflight": args.max_inflight,
        }
    engine = GraspanEngine(
        grammar,
        max_edges_per_partition=args.max_edges_per_partition,
        workdir=args.workdir,
        num_threads=args.threads,
        parallel_backend=args.backend,
        memory_budget=memory_budget,
        checkpoint=False if args.no_checkpoint else None,
        pipeline=args.pipeline,
        fault_injector=injector,
        distributed=distributed,
    )
    computation = engine.run(graph, resume=args.resume)
    try:
        computation.load_resident()
    except MemoryBudgetExceeded as exc:
        # Queries below still work; partitions cycle through the budget.
        print(f"not loading closure resident: {exc}", file=sys.stderr)
    stats = computation.stats
    print(
        f"closure: {stats.original_edges} -> {stats.final_edges} edges "
        f"({stats.growth_factor:.2f}x) in {stats.num_supersteps} supersteps, "
        f"{stats.final_partitions} partitions "
        f"({stats.repartition_count} repartitions); "
        f"compute {stats.timers.get('compute'):.2f}s "
        f"io {stats.timers.get('io'):.2f}s",
        file=sys.stderr,
    )
    par = stats.parallelism_summary()
    print(
        f"join backend {par['backend']}: {par['chunks']} chunks "
        f"(worst balance {par['worst_chunk_balance']}x), "
        f"pool {par['pool_s']}s vs serial-estimate {par['serial_estimate_s']}s "
        f"(~{par['speedup_estimate']}x)",
        file=sys.stderr,
    )
    if args.backend == "distributed":
        dist = stats.distributed_summary()
        print(
            f"distributed: {dist['workers']} workers, "
            f"{dist['leases_issued']} leases issued / "
            f"{dist['leases_completed']} completed, "
            f"{dist['leases_reissued']} reissued "
            f"({dist['reissue_fraction']:.1%}), "
            f"{dist['worker_deaths']} worker deaths, "
            f"{dist['delta_edges_applied']} delta edges applied, "
            f"{dist['duplicate_deltas_suppressed']} duplicates suppressed, "
            f"{dist['stale_deltas_rejected']} stale rejected",
            file=sys.stderr,
        )
    if str(par["backend"]).startswith("matmul"):
        mm = stats.matmul_summary()
        print(
            f"matmul: {mm['products']} label-block products "
            f"({mm['product_nnz']} nnz); "
            f"{mm['blocks_built']} blocks built, "
            f"{mm['blocks_reused']} reused "
            f"({mm['block_reuse_fraction']:.0%})",
            file=sys.stderr,
        )
    if memory_budget is not None:
        print(
            f"residency: budget {stats.memory_budget} B, "
            f"peak {stats.peak_resident_bytes} B resident, "
            f"{stats.evictions} evictions, {stats.cache_hits} cache hits, "
            f"{stats.partition_loads} loads; "
            f"read {stats.bytes_read} B, wrote {stats.bytes_written} B",
            file=sys.stderr,
        )
    dur = stats.durability_summary()
    if dur["checkpoint"] or args.resume or injector is not None:
        resumed = (
            f"resumed from superstep {dur['resumed_from']}"
            if dur["resumed_from"] is not None
            else "fresh run"
        )
        print(
            f"durability: {dur['checkpoints_written']} checkpoints "
            f"({dur['checkpoint_s']}s), {resumed}; "
            f"{dur['io_retries']} io retries, "
            f"{dur['tmp_scrubbed']} tmp scrubbed, "
            f"{dur['files_purged']} files purged, "
            f"{dur['worker_respawns']} worker respawns"
            + (", backend degraded" if dur["backend_degraded"] else ""),
            file=sys.stderr,
        )
    if stats.pipeline_enabled:
        pipe = stats.pipeline_summary()
        print(
            f"overlap: {pipe['overlap_fraction']:.0%} of background io hidden "
            f"({pipe['io_hidden_s']}s of {pipe['io_busy_s']}s); "
            f"prefetch {pipe['prefetch_hits']}/{pipe['prefetch_issued']} hits "
            f"({pipe['prefetch_wasted']} wasted); "
            f"waited {pipe['load_wait_s']}s loads, "
            f"{pipe['flush_wait_s']}s flushes",
            file=sys.stderr,
        )
    if args.label:
        src, dst = computation.edges_with_label_arrays(args.label)
        for s, d in zip(src.tolist(), dst.tolist()):
            print(f"{s}\t{d}\t{args.label}")
    if args.out:
        write_text(computation.to_memgraph(), args.out)
        print(f"full closure written to {args.out}", file=sys.stderr)
    return 0


def _cmd_races(args: argparse.Namespace) -> int:
    from repro.analysis.escape import EscapeAnalysis
    from repro.analysis.pointsto import PointsToAnalysis
    from repro.analysis.races import RaceAnalysis
    from repro.frontend import compile_program

    source = Path(args.file).read_text()
    pg = compile_program(
        source,
        module=args.module,
        context_depth=args.context_depth,
    )
    pointsto = PointsToAnalysis().run(pg)
    escape = EscapeAnalysis().run(pg, pointsto)
    races = RaceAnalysis().run(pg, pointsto, escape=escape)
    print(
        f"{args.file}: {len(pg.spawn_contexts)} spawn sites, "
        f"{races.num_threads} static threads, "
        f"{races.num_shared_objects} shared objects, "
        f"{races.num_accesses} heap accesses "
        f"(1 closure run, {pointsto.num_points_to_facts} points-to facts "
        "reused by escape + race clients)",
        file=sys.stderr,
    )
    for report in races.reports:
        print(report.describe())
    return 1 if races.reports else 0


def _cmd_taint(args: argparse.Namespace) -> int:
    from repro.analysis.pointsto import PointsToAnalysis
    from repro.analysis.taint import TaintAnalysis
    from repro.frontend import compile_program

    source = Path(args.file).read_text()
    pg = compile_program(
        source,
        module=args.module,
        context_depth=args.context_depth,
    )
    pointsto = PointsToAnalysis().run(pg)
    taint = TaintAnalysis().run(pg, pointsto=pointsto)
    print(
        f"{args.file}: {taint.num_tainted} tainted vertices, "
        f"{taint.num_flows} unsanitized source-to-sink flows "
        f"(taint grammar over {pointsto.num_points_to_facts} alias-aware "
        "points-to facts)",
        file=sys.stderr,
    )
    for flow in taint.flows:
        print(flow.describe())
    return 1 if taint.flows else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ClosureDaemon
    from repro.util.faults import FaultInjector, FaultPlan
    from repro.util.memory import parse_memory_size

    fault_plan = FaultPlan.from_env()
    injector = None
    if not fault_plan.empty():
        injector = FaultInjector(fault_plan)
        print(f"fault injection active: {fault_plan}", file=sys.stderr)
    daemon = ClosureDaemon(
        store_root=args.store,
        host=args.host,
        port=args.port,
        max_edges_per_partition=args.max_edges_per_partition,
        memory_budget=(
            parse_memory_size(args.memory_budget) if args.memory_budget else None
        ),
        num_threads=args.threads,
        parallel_backend=args.backend,
        num_workers=args.workers,
        fault_injector=injector,
        crash_mode="exit",
        announce=True,
        max_inflight=args.max_inflight,
        request_timeout=args.request_timeout,
        drain_grace=args.drain_grace,
    )
    daemon.serve_forever()
    return 0


def _cmd_coordinator(args: argparse.Namespace) -> int:
    import time

    from repro.distributed import DistributedCoordinator
    from repro.engine import GraspanEngine
    from repro.grammar import parse_grammar_file
    from repro.graph import read_text, write_text
    from repro.util.faults import FaultInjector, FaultPlan
    from repro.util.memory import parse_memory_size

    grammar = parse_grammar_file(args.grammar)
    graph = read_text(args.graph)
    fault_plan = FaultPlan.from_env()
    injector = None
    if not fault_plan.empty():
        injector = FaultInjector(fault_plan)
        print(f"fault injection active: {fault_plan}", file=sys.stderr)
    engine = GraspanEngine(
        grammar,
        max_edges_per_partition=args.max_edges_per_partition,
        workdir=args.workdir,
        parallel_backend="distributed",
        memory_budget=(
            parse_memory_size(args.memory_budget) if args.memory_budget else None
        ),
        checkpoint=False if args.no_checkpoint else None,
        fault_injector=injector,
    )
    with engine.session(graph, resume=args.resume) as session:
        coordinator = DistributedCoordinator(
            session,
            host=args.host,
            port=args.port,
            lease_timeout=args.lease_timeout,
            max_inflight=args.max_inflight,
            worker_backend=args.worker_backend,
        )
        coordinator.start()
        print(
            f"coordinator listening on {coordinator.host}:{coordinator.port}",
            file=sys.stderr,
            flush=True,
        )
        try:
            # Wait for the *drain*, not the first "done": stopping the
            # instant one worker sees the fixpoint races the others'
            # in-flight lease polls into connection-refused failures.
            while not coordinator.drained() and coordinator.failure is None:
                time.sleep(0.05)
        finally:
            coordinator.stop()
        if coordinator.failure is not None:
            raise coordinator.failure
        stats = session.stats
        dist = stats.distributed_summary()
        print(
            f"closure complete: {stats.num_supersteps} supersteps over "
            f"{dist['workers']} workers; {dist['leases_issued']} leases "
            f"issued, {dist['leases_reissued']} reissued, "
            f"{dist['worker_deaths']} worker deaths",
            file=sys.stderr,
        )
        if args.out:
            write_text(session.pset.to_memgraph(), args.out)
            print(f"full closure written to {args.out}", file=sys.stderr)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed import DistributedWorker
    from repro.util.faults import FaultPlan
    from repro.util.memory import parse_memory_size

    fault_plan = FaultPlan.from_env()
    if fault_plan.empty():
        fault_plan = None
    else:
        print(f"fault injection active: {fault_plan}", file=sys.stderr)
    worker = DistributedWorker(
        args.host,
        args.port,
        workdir=args.workdir,
        worker_id=args.worker_id,
        memory_budget=(
            parse_memory_size(args.memory_budget) if args.memory_budget else None
        ),
        fault_plan=fault_plan,
        hard_kill=True,
    )
    completed = worker.run()
    print(f"{args.worker_id}: {completed} leases completed", file=sys.stderr)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import os

    from repro.fuzz import DEFAULT_CONFIGS, FULL_CONFIGS, fuzz

    if args.seed_list:
        seeds = [int(s) for s in args.seed_list.split(",") if s.strip()]
    else:
        seeds = list(range(args.first_seed, args.first_seed + args.seeds))
    configs = FULL_CONFIGS if args.full else DEFAULT_CONFIGS
    if args.configs:
        wanted = {name.strip() for name in args.configs.split(",")}
        configs = tuple(c for c in FULL_CONFIGS if c.name in wanted)
        unknown = wanted - {c.name for c in configs}
        if unknown:
            known = ", ".join(c.name for c in FULL_CONFIGS)
            print(
                f"error: unknown config(s) {sorted(unknown)}; known: {known}",
                file=sys.stderr,
            )
            return 2
    fault_offset = args.fault_seed
    if fault_offset is None:
        fault_offset = int(os.environ.get("REPRO_FAULT_SEED", "0") or "0")
    artifact_dir = Path(args.artifacts) if args.artifacts else None

    def progress(result) -> None:
        mark = "ok" if result.status == "ok" else "FAIL"
        print(
            f"{mark} seed {result.seed} {result.case_name} "
            f"({result.seconds:.2f}s)",
            file=sys.stderr,
            flush=True,
        )

    report = fuzz(
        seeds,
        configs=configs,
        artifact_dir=artifact_dir,
        fault=not args.no_fault,
        fault_offset=fault_offset,
        shrink=not args.no_shrink,
        on_result=progress,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import workload_by_name

    workload = workload_by_name(args.name, scale=args.scale)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for module, source in workload.sources:
        (out / f"{module}.c").write_text(source)
    truth = [
        {"checker": t.checker, "function": t.function, "variable": t.variable}
        for t in workload.ground_truth
    ]
    (out / "ground_truth.json").write_text(json.dumps(truth, indent=2))
    print(
        f"{workload.name}: {len(workload.sources)} modules, {workload.loc} LoC, "
        f"{len(truth)} ground-truth findings -> {out}",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graspan reproduction: interprocedural static analysis "
        "as disk-based graph processing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="run analyses + checkers on MiniC")
    analyze.add_argument("file", help="MiniC source file")
    analyze.add_argument("--module", default="", help="module label for reports")
    analyze.add_argument(
        "--context-depth",
        type=int,
        default=None,
        help="bound inlining depth (default: fully context-sensitive)",
    )
    analyze.add_argument(
        "--checkers", default=None, help="comma-separated checker names"
    )
    analyze.add_argument(
        "--mode",
        choices=("baseline", "augmented", "both"),
        default="augmented",
    )
    analyze.set_defaults(func=_cmd_analyze)

    closure = sub.add_parser("closure", help="raw grammar-guided closure")
    closure.add_argument("--graph", required=True, help="text edge-list file")
    closure.add_argument("--grammar", required=True, help="grammar text file")
    closure.add_argument("--label", default=None, help="print edges with this label")
    closure.add_argument("--out", default=None, help="write full closure here")
    closure.add_argument(
        "--max-edges-per-partition", type=int, default=None, dest="max_edges_per_partition"
    )
    closure.add_argument("--workdir", default=None)
    closure.add_argument(
        "--memory-budget",
        default=None,
        dest="memory_budget",
        help="resident-partition byte budget, e.g. 64M or 2G (requires "
        "--workdir); partitions beyond it are evicted least-recently-used",
    )
    closure.add_argument(
        "--resume",
        action="store_true",
        help="resume from the last committed checkpoint in --workdir",
    )
    closure.add_argument(
        "--no-checkpoint",
        action="store_true",
        dest="no_checkpoint",
        help="disable the run journal + manifest even with --workdir",
    )
    closure.add_argument(
        "--pipeline",
        action="store_true",
        dest="pipeline",
        default=None,
        help="overlap disk I/O with compute: background prefetch of the "
        "predicted next pair + asynchronous write-back (requires "
        "--workdir; on by default when one is set)",
    )
    closure.add_argument(
        "--no-pipeline",
        action="store_false",
        dest="pipeline",
        help="force the sequential load/compute/flush loop",
    )
    closure.add_argument("--threads", type=int, default=1)
    closure.add_argument(
        "--backend",
        choices=("serial", "thread", "process", "matmul", "distributed"),
        default=None,
        help="join data plane (default: thread when --threads > 1, else "
        "serial; process = shared-memory worker pool; matmul = per-label "
        "boolean sparse matrix products, needs scipy; distributed = "
        "coordinator + in-process lease workers, requires --workdir)",
    )
    closure.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="lease workers for --backend distributed (default: --threads)",
    )
    closure.add_argument(
        "--lease-timeout",
        type=_positive_float,
        default=30.0,
        dest="lease_timeout",
        help="seconds before an unrenewed pair lease is reissued "
        "(--backend distributed)",
    )
    closure.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=None,
        dest="max_inflight",
        help="cap on concurrently leased pairs (--backend distributed)",
    )
    closure.set_defaults(func=_cmd_closure)

    races = sub.add_parser(
        "races", help="interprocedural lockset race detection on MiniC"
    )
    races.add_argument("file", help="MiniC source file")
    races.add_argument("--module", default="", help="module label for reports")
    races.add_argument(
        "--context-depth",
        type=int,
        default=None,
        help="bound inlining depth (default: fully context-sensitive)",
    )
    races.set_defaults(func=_cmd_races)

    taint = sub.add_parser(
        "taint", help="grammar-driven taint/injection analysis on MiniC"
    )
    taint.add_argument("file", help="MiniC source file")
    taint.add_argument("--module", default="", help="module label for reports")
    taint.add_argument(
        "--context-depth",
        type=int,
        default=None,
        help="bound inlining depth (default: fully context-sensitive)",
    )
    taint.set_defaults(func=_cmd_taint)

    coordinator = sub.add_parser(
        "coordinator",
        help="distributed supersteps: serve pair leases for one closure",
    )
    coordinator.add_argument("--graph", required=True, help="text edge-list file")
    coordinator.add_argument("--grammar", required=True, help="grammar text file")
    coordinator.add_argument(
        "--workdir",
        required=True,
        help="partition directory shared with the workers",
    )
    coordinator.add_argument("--host", default="127.0.0.1")
    coordinator.add_argument(
        "--port", type=int, default=0, help="0 picks a free port (announced on stderr)"
    )
    coordinator.add_argument(
        "--max-edges-per-partition",
        type=int,
        default=None,
        dest="max_edges_per_partition",
    )
    coordinator.add_argument(
        "--memory-budget",
        default=None,
        dest="memory_budget",
        help="coordinator-side resident-partition byte budget, e.g. 64M",
    )
    coordinator.add_argument(
        "--lease-timeout",
        type=_positive_float,
        default=30.0,
        dest="lease_timeout",
        help="seconds before an unrenewed pair lease is reissued",
    )
    coordinator.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=None,
        dest="max_inflight",
        help="cap on concurrently leased pairs",
    )
    coordinator.add_argument(
        "--worker-backend",
        choices=("serial", "thread", "matmul"),
        default=None,
        dest="worker_backend",
        help="join backend each worker runs locally (default serial)",
    )
    coordinator.add_argument(
        "--resume",
        action="store_true",
        help="resume from the last committed checkpoint in --workdir",
    )
    coordinator.add_argument(
        "--no-checkpoint",
        action="store_true",
        dest="no_checkpoint",
        help="disable the run journal + manifest",
    )
    coordinator.add_argument("--out", default=None, help="write full closure here")
    coordinator.set_defaults(func=_cmd_coordinator)

    worker = sub.add_parser(
        "worker",
        help="distributed supersteps: pull and compute pair leases",
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=_positive_int, required=True)
    worker.add_argument(
        "--workdir",
        required=True,
        help="partition directory shared with the coordinator",
    )
    worker.add_argument(
        "--worker-id", default="worker", dest="worker_id", help="name in telemetry"
    )
    worker.add_argument(
        "--memory-budget",
        default=None,
        dest="memory_budget",
        help="worker-side partition-cache byte budget, e.g. 64M",
    )
    worker.set_defaults(func=_cmd_worker)

    serve = sub.add_parser(
        "serve", help="closure-as-a-service daemon over a persistent store"
    )
    serve.add_argument(
        "--store", required=True, help="closure store directory (created if missing)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks a free port (announced on stderr)"
    )
    serve.add_argument(
        "--max-edges-per-partition",
        type=int,
        default=None,
        dest="max_edges_per_partition",
    )
    serve.add_argument(
        "--memory-budget",
        default=None,
        dest="memory_budget",
        help="resident-partition byte budget per closure, e.g. 64M",
    )
    serve.add_argument("--threads", type=int, default=1)
    serve.add_argument(
        "--backend",
        choices=("serial", "thread", "process", "matmul"),
        default=None,
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=8,
        help="concurrent query worker threads",
    )
    serve.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=32,
        dest="max_inflight",
        help="blocking requests admitted at once; the excess is shed "
        "with a typed 'overloaded' response",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        dest="request_timeout",
        help="per-request deadline in seconds (default: none)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        dest="drain_grace",
        help="seconds SIGTERM waits for in-flight requests before stopping",
    )
    serve.set_defaults(func=_cmd_serve)

    fuzz = sub.add_parser(
        "fuzz",
        help="seeded differential fuzzing of the engine vs the Datalog oracle",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=25, help="number of consecutive seeds"
    )
    fuzz.add_argument(
        "--first-seed",
        type=int,
        default=1,
        dest="first_seed",
        help="first seed of the consecutive range",
    )
    fuzz.add_argument(
        "--seed-list",
        default=None,
        dest="seed_list",
        help="explicit comma-separated seeds (overrides --seeds)",
    )
    fuzz.add_argument(
        "--full",
        action="store_true",
        help="widen the config matrix with the process pool and "
        "degenerate-partition configurations",
    )
    fuzz.add_argument(
        "--configs",
        default=None,
        help="comma-separated config names to run (subset of the matrix)",
    )
    fuzz.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        dest="fault_seed",
        help="offset for the per-case fault plans (default: "
        "REPRO_FAULT_SEED or 0)",
    )
    fuzz.add_argument(
        "--no-fault",
        action="store_true",
        dest="no_fault",
        help="skip the fault-composed re-run of each case",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        dest="no_shrink",
        help="skip ddmin shrinking of failing MiniC cases",
    )
    fuzz.add_argument(
        "--artifacts",
        default=None,
        help="directory for minimized repro artifacts of failing cases",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    workload = sub.add_parser("workload", help="generate an evaluation codebase")
    workload.add_argument("name", choices=("linux", "postgresql", "httpd"))
    workload.add_argument("--scale", type=float, default=1.0)
    workload.add_argument("--out", required=True)
    workload.set_defaults(func=_cmd_workload)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
