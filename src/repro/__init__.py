"""Graspan reproduction: a disk-based edge-pair-centric graph system for
interprocedural static analysis (ASPLOS 2017).

Layer map (bottom-up):

* :mod:`repro.grammar` — analysis grammars (``add_constraint`` API,
  binarization, the built-in pointer/alias and NULL-dataflow grammars)
* :mod:`repro.graph` — packed sorted edge arrays, in-memory graphs, disk
  edge-list formats
* :mod:`repro.partition` — vertex intervals (VIT), partitions, the
  destination distribution map (DDM), preprocessing, repartitioning
* :mod:`repro.engine` — the edge-pair-centric computation (Algorithm 1),
  the DDM-delta scheduler, in-memory and out-of-core drivers
* :mod:`repro.frontend` — the MiniC compiler frontend: parsing, lowering,
  call graphs, context-sensitive inlining, program-graph generation
* :mod:`repro.analysis` — the pointer/alias and NULL/taint dataflow
  analyses as a user-facing API
* :mod:`repro.checkers` — Table 1's checkers, baseline and augmented
* :mod:`repro.baselines` — ODA, a Datalog engine, a GraphChi-like system
* :mod:`repro.workloads` — generated evaluation codebases with ground truth
* :mod:`repro.bench` — the per-table/figure reproduction harness

Quickstart::

    from repro import compile_program, PointsToAnalysis, NullDataflowAnalysis

    pg = compile_program(open("prog.c").read())
    pts = PointsToAnalysis().run(pg)
    nulls = NullDataflowAnalysis().run(pg, pointsto=pts)
    print(nulls.may_receive("main", "p"))
"""

from repro.analysis import (
    EscapeAnalysis,
    EscapeResult,
    NullDataflowAnalysis,
    PointsToAnalysis,
    PointsToResult,
    RaceAnalysis,
    RaceResult,
    SourceFlowResult,
    TaintAnalysis,
    TaintDataflowAnalysis,
    TaintFlow,
    TaintResult,
)
from repro.engine import (
    CheckpointError,
    GraspanComputation,
    GraspanEngine,
    RunJournal,
    naive_closure,
)
from repro.partition import PartitionCorruptError
from repro.util import FaultInjector, FaultPlan, InjectedCrash, RetryPolicy
from repro.frontend import (
    compile_program,
    dataflow_graph,
    parse,
    pointer_graph,
    taint_graph,
)
from repro.grammar import (
    Grammar,
    FrozenGrammar,
    nullflow_grammar,
    pointsto_grammar,
    pointsto_grammar_extended,
    taint_grammar,
)
from repro.graph import MemGraph
from repro.checkers import (
    AsyncChecker,
    RaceChecker,
    TaintChecker,
    check_program,
    run_analyses,
    run_checkers,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "compile_program",
    "parse",
    "pointer_graph",
    "dataflow_graph",
    "taint_graph",
    "Grammar",
    "FrozenGrammar",
    "pointsto_grammar",
    "pointsto_grammar_extended",
    "nullflow_grammar",
    "taint_grammar",
    "MemGraph",
    "GraspanEngine",
    "GraspanComputation",
    "naive_closure",
    "CheckpointError",
    "RunJournal",
    "PartitionCorruptError",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "RetryPolicy",
    "PointsToAnalysis",
    "PointsToResult",
    "NullDataflowAnalysis",
    "TaintDataflowAnalysis",
    "SourceFlowResult",
    "EscapeAnalysis",
    "EscapeResult",
    "RaceAnalysis",
    "RaceResult",
    "TaintAnalysis",
    "TaintFlow",
    "TaintResult",
    "RaceChecker",
    "TaintChecker",
    "AsyncChecker",
    "check_program",
    "run_analyses",
    "run_checkers",
]
