"""Free: use-after-free and double-free (Table 1, row 5).

Baseline heuristic: after ``free(x)``, any later use of a variable *with
the same name* is flagged.  Aliases escape it entirely — ``free(x)``
followed by a dereference of ``y`` where ``y`` aliases ``x`` is missed
(false negatives by name matching).

Graspan augmentation: the pointer/alias analysis identifies uses through
*any* alias of the freed pointer.
"""

from __future__ import annotations

from typing import List

from repro.checkers.base import AnalysisContext, BugReport, Checker


class FreeChecker(Checker):
    name = "Free"

    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        reports: List[BugReport] = []
        for func in ctx.functions():
            frees = [
                (i, s.rhs, s) for i, s in enumerate(func.stmts) if s.kind == "free"
            ]
            for i, freed, _ in frees:
                if not freed:
                    continue
                for j, stmt in enumerate(func.stmts[i + 1 :], start=i + 1):
                    if self.reassigned_between(func, i, j + 1, freed):
                        break  # fresh value; later uses are fine
                    uses = stmt.kind in ("load",) and stmt.rhs == freed
                    uses = uses or (stmt.kind == "store" and stmt.lhs == freed)
                    double = stmt.kind == "free" and stmt.rhs == freed
                    if uses or double:
                        what = "double free of" if double else "use after free of"
                        reports.append(
                            BugReport(
                                checker=self.name,
                                function=func.name,
                                module=func.module,
                                line=stmt.line,
                                variable=freed,
                                message=f"{what} {freed!r}",
                            )
                        )
        return self.dedup(reports)

    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("pointsto")
        reports = list(self.check_baseline(ctx))
        for func in ctx.functions():
            frees = [(i, s.rhs) for i, s in enumerate(func.stmts) if s.kind == "free"]
            for i, freed in frees:
                if not freed:
                    continue
                for j, base, deref in self.deref_sites(func):
                    if j <= i or base == freed or base.startswith("%"):
                        continue
                    if not ctx.pointsto.vars_may_alias(
                        func.name, freed, func.name, base
                    ):
                        continue
                    reports.append(
                        BugReport(
                            checker=self.name,
                            function=func.name,
                            module=func.module,
                            line=deref.line,
                            variable=base,
                            message=(
                                f"use of {base!r}, which may alias {freed!r} "
                                f"freed at line {func.stmts[i].line}"
                            ),
                            interprocedural=True,
                        )
                    )
        return self.dedup(reports)
