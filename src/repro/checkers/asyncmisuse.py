"""Async: blocking calls reachable from async contexts (new client).

An ``async`` function runs on an event loop; a call that blocks the
thread (``sleep``, directly or transitively) stalls every other task on
that loop.  ``spawn`` hands work to a separate thread, so blocking
*behind a spawn boundary* is fine.

Baseline heuristic: only *direct* calls to the blocking primitive
inside an ``async`` function body are reported.  Blocking hidden behind
any wrapper — even one call deep — is missed (false negatives).

Graspan augmentation: (1) close the "blocks" property over the call
graph (shared with the Block checker), so wrappers are caught;
(2) require *context evidence* from the call-structure closure — the
call site must have produced a clone context marked async in
:attr:`ProgramGraphs.async_contexts` and not severed by a spawn
boundary, so work handed to a thread is correctly not flagged; and
(3) resolve function-pointer calls with the pointer analysis.  All
facts come from artifacts already in hand — no extra engine run.
"""

from __future__ import annotations

from typing import List

from repro.checkers.base import AnalysisContext, BugReport, Checker
from repro.checkers.block import blocking_closure, pointer_targets
from repro.frontend.ast import BLOCKING_BUILTINS
from repro.frontend.lower import LoweredFunction


class AsyncChecker(Checker):
    name = "Async"

    # ------------------------------------------------------------------
    # baseline: direct blocking builtins in async bodies only
    # ------------------------------------------------------------------
    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        reports: List[BugReport] = []
        for func in ctx.functions():
            if not func.is_async:
                continue
            for stmt in func.stmts:
                if stmt.kind == "call" and stmt.callee in BLOCKING_BUILTINS:
                    reports.append(
                        BugReport(
                            checker=self.name,
                            function=func.name,
                            module=func.module,
                            line=stmt.line,
                            variable=stmt.callee,
                            message=(
                                f"direct call to blocking {stmt.callee}() "
                                f"in async function {func.name}"
                            ),
                        )
                    )
        return self.dedup(reports)

    # ------------------------------------------------------------------
    # augmented: call-graph blocking closure + async context evidence
    # ------------------------------------------------------------------
    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("pointsto")
        blocking = blocking_closure(ctx)
        reports = list(self.check_baseline(ctx))
        for func in ctx.functions():
            if not func.is_async:
                continue
            local_vars = set(func.params) | set(func.locals)
            for stmt in func.stmts:
                if stmt.kind != "call" or not stmt.callee:
                    continue  # spawn boundaries are skipped by design
                callee = stmt.callee
                if callee in blocking:
                    if self._async_context_evidence(ctx, func, stmt):
                        reports.append(
                            BugReport(
                                checker=self.name,
                                function=func.name,
                                module=func.module,
                                line=stmt.line,
                                variable=callee,
                                message=(
                                    f"call to {callee}(), which transitively "
                                    f"blocks, in async function {func.name}"
                                ),
                                interprocedural=True,
                            )
                        )
                elif callee in local_vars or callee in ctx.pg.lowered.global_vars:
                    targets = pointer_targets(ctx, func.name, callee)
                    hit = sorted(targets & blocking)
                    if hit:
                        reports.append(
                            BugReport(
                                checker=self.name,
                                function=func.name,
                                module=func.module,
                                line=stmt.line,
                                variable=callee,
                                message=(
                                    f"indirect call through {callee!r} may "
                                    f"invoke blocking {hit[0]}() in async "
                                    f"function {func.name}"
                                ),
                                interprocedural=True,
                            )
                        )
        return self.dedup(reports)

    @staticmethod
    def _async_context_evidence(
        ctx: AnalysisContext, func: LoweredFunction, stmt
    ) -> bool:
        """Did this call site produce an async clone context?

        Graph generation marks every child context created inside an
        async function's dynamic extent (and not severed by ``spawn``)
        in ``async_contexts``; the call site is a real async-blocking
        hazard only when such a clone exists.
        """
        pg = ctx.pg
        for child_ctx, site in pg.context_call_sites.items():
            if (
                site.caller == func.name
                and site.line == stmt.line
                and site.callee == stmt.callee
                and not site.spawned
                and child_ctx in pg.async_contexts
            ):
                return True
        return False
