"""Race: lockset data races on thread-shared data (new Graspan client).

Baseline heuristic: purely intraprocedural and name-keyed.  Threads are
the direct targets of ``spawn`` statements (plus the spawning function
itself); shared data is a *global variable name* dereferenced in two
concurrent functions; locks are identified by variable name.  Three
documented blind spots follow: heap cells handed to a thread through a
parameter are invisible (not a global name), data reached through a
callee of the thread body is invisible (no interprocedural view), and
two lock variables aliasing one lock object look like different locks
(false alarms).

Graspan augmentation: consumes the interprocedural lockset analysis
(:mod:`repro.analysis.races`), which keys accesses by points-to
*objects*, propagates locksets along the cloned call tree, and resolves
lock identity through the alias closure — all on the already-computed
pointer closure.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.races import Access, RaceAnalysis
from repro.checkers.base import AnalysisContext, BugReport, Checker
from repro.frontend.lower import LoweredFunction


class RaceChecker(Checker):
    name = "Race"

    # ------------------------------------------------------------------
    # baseline: intraprocedural, name-keyed
    # ------------------------------------------------------------------
    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        spawn_counts: Dict[str, int] = {}
        spawners: Set[str] = set()
        for func in ctx.functions():
            for stmt in func.stmts:
                if stmt.kind == "spawn" and stmt.callee:
                    spawn_counts[stmt.callee] = spawn_counts.get(stmt.callee, 0) + 1
                    spawners.add(func.name)
        targets = set(spawn_counts)
        if not targets:
            return []

        # (function, global var) -> accesses as (line, is_write, lock names)
        accesses: Dict[Tuple[str, str], List[Tuple[int, bool, frozenset]]] = {}
        for func in ctx.functions():
            if func.name not in targets and func.name not in spawners:
                continue
            for line, var, is_write, held in self._scan_globals(func):
                accesses.setdefault((func.name, var), []).append(
                    (line, is_write, held)
                )

        reports: List[BugReport] = []
        funcs = ctx.lowered.functions
        items = sorted(accesses.items())
        for i, ((f1, v1), acc1) in enumerate(items):
            for (f2, v2), acc2 in items[i:]:
                if v1 != v2:
                    continue
                if not self._concurrent(f1, f2, targets, spawners, spawn_counts):
                    continue
                for line1, w1, held1 in acc1:
                    for line2, w2, held2 in acc2:
                        if f1 == f2 and line1 == line2:
                            continue
                        if not (w1 or w2):
                            continue
                        if held1 & held2:
                            continue  # a same-named lock guards both
                        reports.append(
                            BugReport(
                                checker=self.name,
                                function=f1,
                                module=funcs[f1].module,
                                line=line1,
                                variable=v1,
                                message=(
                                    f"possible data race on global {v1!r} "
                                    f"(conflicts with {f2}:{line2})"
                                ),
                            )
                        )
                        reports.append(
                            BugReport(
                                checker=self.name,
                                function=f2,
                                module=funcs[f2].module,
                                line=line2,
                                variable=v2,
                                message=(
                                    f"possible data race on global {v2!r} "
                                    f"(conflicts with {f1}:{line1})"
                                ),
                            )
                        )
        return self.dedup(reports)

    @staticmethod
    def _concurrent(
        f1: str,
        f2: str,
        targets: Set[str],
        spawners: Set[str],
        spawn_counts: Dict[str, int],
    ) -> bool:
        """May the two functions run on different threads (name-level)?"""
        if f1 == f2:
            return f1 in targets and spawn_counts.get(f1, 0) >= 2
        both_involved = (f1 in targets or f1 in spawners) and (
            f2 in targets or f2 in spawners
        )
        return both_involved and (f1 in targets or f2 in targets)

    @staticmethod
    def _scan_globals(func: LoweredFunction):
        """(line, global var, is_write, held lock names) per dereference
        of a variable not declared in this function."""
        local_names = set(func.params) | set(func.locals)
        held: List[str] = []
        for stmt in func.stmts:
            if stmt.kind == "lock" and stmt.rhs:
                held.append(stmt.rhs)
            elif stmt.kind == "unlock" and stmt.rhs in held:
                held.remove(stmt.rhs)
            elif stmt.kind in ("load", "store"):
                var = stmt.rhs if stmt.kind == "load" else stmt.lhs
                if var and var not in local_names:
                    yield stmt.line, var, stmt.kind == "store", frozenset(held)

    # ------------------------------------------------------------------
    # augmented: the interprocedural lockset analysis
    # ------------------------------------------------------------------
    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("pointsto")
        races = ctx.races
        if races is None:
            races = RaceAnalysis().run(ctx.pg, ctx.pointsto, escape=ctx.escape)
        funcs = ctx.lowered.functions
        reports: List[BugReport] = []
        for race in races.reports:
            for side, other in (
                (race.first, race.second),
                (race.second, race.first),
            ):
                reports.append(self._side_report(funcs, race, side, other))
        return self.dedup(reports)

    def _side_report(
        self, funcs, race, side: Access, other: Access
    ) -> BugReport:
        kind = "write" if side.is_write else "read"
        other_kind = "write" if other.is_write else "read"
        return BugReport(
            checker=self.name,
            function=side.function,
            module=funcs[side.function].module,
            line=side.line,
            variable=side.var,
            message=(
                f"data race on {race.object_desc}: unsynchronized {kind} "
                f"of *{side.var} vs {other_kind} in "
                f"{other.function}:{other.line}"
            ),
            interprocedural=True,
        )
