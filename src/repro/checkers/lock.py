"""Lock: double acquisition, unreleased and unheld locks (Table 1, row 4).

Baseline heuristic: locks are identified *by variable name* — ``lock(l)``
while ``l`` is already held is a double acquire; a lock still held at
function exit was not restored; ``unlock(l)`` while ``l`` is not held is
an unheld release.  Two different names for the same lock object defeat
all three.

Graspan augmentation: the alias analysis equates lock variables that may
point to the same lock object — catching aliased double acquisition, and
letting ``unlock`` through an alias release the matching acquisition
(exact-name matches are preferred, so independently-named locks are
never released by accident).
"""

from __future__ import annotations

from typing import List, Optional

from repro.checkers.base import AnalysisContext, BugReport, Checker


class LockChecker(Checker):
    name = "Lock"

    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        return self._scan(ctx, aliases=False)

    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("pointsto")
        return self._scan(ctx, aliases=True)

    def _scan(self, ctx: AnalysisContext, aliases: bool) -> List[BugReport]:
        reports: List[BugReport] = []
        for func in ctx.functions():
            held: List[str] = []
            for stmt in func.stmts:
                if stmt.kind == "lock" and stmt.rhs:
                    conflict = self._conflicting(ctx, func.name, held, stmt.rhs, aliases)
                    if conflict is not None:
                        same_name = conflict == stmt.rhs
                        reports.append(
                            BugReport(
                                checker=self.name,
                                function=func.name,
                                module=func.module,
                                line=stmt.line,
                                variable=stmt.rhs,
                                message=(
                                    f"double acquisition of lock {stmt.rhs!r}"
                                    + (
                                        ""
                                        if same_name
                                        else f" (aliases held lock {conflict!r})"
                                    )
                                ),
                                interprocedural=not same_name,
                            )
                        )
                    held.append(stmt.rhs)
                elif stmt.kind == "unlock" and stmt.rhs:
                    released = self._release(ctx, func.name, held, stmt.rhs, aliases)
                    if released is None:
                        reports.append(
                            BugReport(
                                checker=self.name,
                                function=func.name,
                                module=func.module,
                                line=stmt.line,
                                variable=stmt.rhs,
                                message=f"unlock of unheld lock {stmt.rhs!r}",
                            )
                        )
            for leftover in held:
                reports.append(
                    BugReport(
                        checker=self.name,
                        function=func.name,
                        module=func.module,
                        line=func.stmts[-1].line if func.stmts else func.line,
                        variable=leftover,
                        message=f"lock {leftover!r} not released on exit",
                    )
                )
        return self.dedup(reports)

    @staticmethod
    def _release(
        ctx: AnalysisContext,
        function: str,
        held: List[str],
        incoming: str,
        aliases: bool,
    ) -> Optional[str]:
        """Release the most recent held lock matching ``incoming``: by
        exact name first, then (augmented only) by may-alias identity.
        Returns the released name, or None when nothing matched."""
        for i in range(len(held) - 1, -1, -1):
            if held[i] == incoming:
                return held.pop(i)
        if aliases:
            for i in range(len(held) - 1, -1, -1):
                if ctx.pointsto.vars_may_alias(
                    function, held[i], function, incoming
                ):
                    return held.pop(i)
        return None

    @staticmethod
    def _conflicting(
        ctx: AnalysisContext,
        function: str,
        held: List[str],
        incoming: str,
        aliases: bool,
    ) -> Optional[str]:
        for lock_var in held:
            if lock_var == incoming:
                return lock_var
            if aliases and ctx.pointsto.vars_may_alias(
                function, lock_var, function, incoming
            ):
                return lock_var
        return None
