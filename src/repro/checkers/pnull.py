"""PNull: dereferences post-dominated by a NULL test (Brown et al., Table 1).

Baseline heuristic: a dereference ``a = b->f`` followed later by a test
``if (b)`` suggests the developer believes ``b`` can be NULL, so the
earlier dereference may crash.  In most real cases the dereference sits
on a path where the pointer cannot be NULL and the test exists for a
*different* incoming path — a classic false-positive generator.

Graspan augmentation: keep only the reports where the interprocedural
dataflow analysis confirms NULL can actually reach the pointer.
"""

from __future__ import annotations

from typing import List

from repro.checkers.base import AnalysisContext, BugReport, Checker


class PNullChecker(Checker):
    name = "PNull"

    def _candidates(self, ctx: AnalysisContext) -> List[BugReport]:
        reports: List[BugReport] = []
        for func in ctx.functions():
            test_indices = [
                (i, s.rhs) for i, s in enumerate(func.stmts) if s.kind == "test"
            ]
            for j, base, deref in self.deref_sites(func):
                if base.startswith("%"):
                    continue
                if self.is_protected(func, j, base):
                    continue  # checked before the deref: not the pattern
                later_test = any(i > j and v == base for i, v in test_indices)
                if later_test:
                    reports.append(
                        BugReport(
                            checker=self.name,
                            function=func.name,
                            module=func.module,
                            line=deref.line,
                            variable=base,
                            message=(
                                f"dereference of {base!r} is followed by a NULL "
                                "test on it"
                            ),
                        )
                    )
        return self.dedup(reports)

    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        return self._candidates(ctx)

    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("nullflow")
        out: List[BugReport] = []
        for report in self._candidates(ctx):
            if ctx.nullflow.may_receive(report.function, report.variable):
                out.append(
                    BugReport(
                        checker=report.checker,
                        function=report.function,
                        module=report.module,
                        line=report.line,
                        variable=report.variable,
                        message=report.message + " (NULL flow confirmed)",
                        interprocedural=True,
                    )
                )
        return out
