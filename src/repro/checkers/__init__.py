"""Static checkers: Table 1's seven, baseline and Graspan-augmented,
plus the UNTest, Race, Taint, and Async clients."""

from repro.checkers.asyncmisuse import AsyncChecker
from repro.checkers.base import AnalysisContext, BugReport, Checker
from repro.checkers.block import BlockChecker
from repro.checkers.free import FreeChecker
from repro.checkers.lock import LockChecker
from repro.checkers.null import NullChecker
from repro.checkers.pnull import PNullChecker
from repro.checkers.race import RaceChecker
from repro.checkers.range import RangeChecker
from repro.checkers.size import SizeChecker
from repro.checkers.taint import TaintChecker
from repro.checkers.untest import UNTestChecker
from repro.checkers.diffing import (
    FindingsDiff,
    diff_reports,
    diff_runs,
    load_findings,
    save_findings,
)
from repro.checkers.driver import (
    ALL_CHECKERS,
    CheckerRunResult,
    CheckerScore,
    GroundTruthBug,
    check_program,
    run_analyses,
    run_checkers,
)

__all__ = [
    "AnalysisContext",
    "BugReport",
    "Checker",
    "BlockChecker",
    "FreeChecker",
    "LockChecker",
    "NullChecker",
    "PNullChecker",
    "RaceChecker",
    "RangeChecker",
    "SizeChecker",
    "TaintChecker",
    "AsyncChecker",
    "UNTestChecker",
    "ALL_CHECKERS",
    "CheckerRunResult",
    "CheckerScore",
    "GroundTruthBug",
    "check_program",
    "run_analyses",
    "run_checkers",
    "FindingsDiff",
    "diff_reports",
    "diff_runs",
    "save_findings",
    "load_findings",
]
