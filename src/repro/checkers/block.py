"""Block: blocking calls inside critical sections (Table 1, row 1).

Baseline heuristic: only *direct* calls to the blocking primitive
(``sleep``) between a ``lock``/``unlock`` pair are reported.  Blocking
hidden behind a wrapper function or invoked through a function pointer
is missed (false negatives).

Graspan augmentation: (1) close the "blocks" property over the call
graph so wrappers are caught, and (2) resolve function-pointer calls
with the pointer analysis — function references are modeled as
``fn:<name>`` objects, so points-to on the pointer variable recovers the
possible callees.
"""

from __future__ import annotations

from typing import List, Set

from repro.checkers.base import AnalysisContext, BugReport, Checker
from repro.frontend.ast import BLOCKING_BUILTINS


def blocking_closure(ctx: AnalysisContext) -> Set[str]:
    """Defined functions that may (transitively) call ``sleep``.

    Shared by the Block checker (blocking under a lock) and the Async
    checker (blocking in an async context).
    """
    direct: Set[str] = set()
    for func in ctx.functions():
        for stmt in func.stmts:
            if stmt.kind == "call" and stmt.callee in BLOCKING_BUILTINS:
                direct.add(func.name)
    callgraph = ctx.pg.callgraph
    blocking = set(direct)
    changed = True
    while changed:
        changed = False
        for caller, sites in callgraph.callees.items():
            if caller in blocking:
                continue
            if any(site.callee in blocking for site in sites):
                blocking.add(caller)
                changed = True
    return blocking


def pointer_targets(
    ctx: AnalysisContext, function: str, pointer_var: str
) -> Set[str]:
    """Functions a function-pointer variable may target (via points-to)."""
    targets: Set[str] = set()
    namer = ctx.pg.namer
    vids = namer.vertices_for(function, pointer_var)
    if not vids:  # a global function pointer
        vids = namer.vertices_for("", "@" + pointer_var)
    for vid in vids:
        targets |= ctx.pointsto.function_pointer_targets(vid)
    return targets


class BlockChecker(Checker):
    name = "Block"

    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        reports: List[BugReport] = []
        for func in ctx.functions():
            depth = 0
            for stmt in func.stmts:
                if stmt.kind == "lock":
                    depth += 1
                elif stmt.kind == "unlock":
                    depth = max(0, depth - 1)
                elif (
                    stmt.kind == "call"
                    and depth > 0
                    and stmt.callee in BLOCKING_BUILTINS
                ):
                    reports.append(
                        BugReport(
                            checker=self.name,
                            function=func.name,
                            module=func.module,
                            line=stmt.line,
                            variable=stmt.callee,
                            message=f"direct call to blocking {stmt.callee}() "
                            "while holding a lock",
                        )
                    )
        return self.dedup(reports)

    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("pointsto")
        blocking = self._blocking_closure(ctx)
        reports = list(self.check_baseline(ctx))
        for func in ctx.functions():
            local_vars = set(func.params) | set(func.locals)
            depth = 0
            for stmt in func.stmts:
                if stmt.kind == "lock":
                    depth += 1
                elif stmt.kind == "unlock":
                    depth = max(0, depth - 1)
                elif stmt.kind == "call" and depth > 0:
                    callee = stmt.callee
                    if callee in blocking:
                        reports.append(
                            BugReport(
                                checker=self.name,
                                function=func.name,
                                module=func.module,
                                line=stmt.line,
                                variable=callee,
                                message=f"call to {callee}(), which transitively "
                                "blocks, while holding a lock",
                                interprocedural=True,
                            )
                        )
                    elif callee in local_vars or callee in ctx.pg.lowered.global_vars:
                        targets = self._pointer_targets(ctx, func.name, callee)
                        hit = sorted(targets & blocking)
                        if hit:
                            reports.append(
                                BugReport(
                                    checker=self.name,
                                    function=func.name,
                                    module=func.module,
                                    line=stmt.line,
                                    variable=callee,
                                    message=(
                                        f"indirect call through {callee!r} may "
                                        f"invoke blocking {hit[0]}() while "
                                        "holding a lock"
                                    ),
                                    interprocedural=True,
                                )
                            )
        return self.dedup(reports)

    # Module-level helpers, kept as static aliases for existing callers.
    _blocking_closure = staticmethod(blocking_closure)
    _pointer_targets = staticmethod(pointer_targets)
