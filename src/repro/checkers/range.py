"""Range: user-controlled array indices without bounds checks (Table 1).

Baseline heuristic: only indices assigned *directly* from the user-data
source (``i = get_user()``) in the same function count; an index that
took even one hop (``j = i;`` or arithmetic, or a parameter) is missed.

Graspan augmentation: the taint dataflow analysis tracks user data
through copies, arithmetic, calls, and heap cells, so transitively
user-controlled indices are caught too.
"""

from __future__ import annotations

from typing import List, Set

from repro.checkers.base import AnalysisContext, BugReport, Checker
from repro.frontend.lower import LoweredFunction


class RangeChecker(Checker):
    name = "Range"

    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        reports: List[BugReport] = []
        for func in ctx.functions():
            direct = {
                s.lhs
                for s in func.stmts
                if s.kind == "call" and s.callee == "get_user" and s.lhs
            }
            reports.extend(self._scan(func, lambda v: v in direct, False))
        return self.dedup(reports)

    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("taintflow")
        reports: List[BugReport] = []
        for func in ctx.functions():
            reports.extend(
                self._scan(
                    func,
                    lambda v, f=func: ctx.taintflow.may_receive(f.name, v),
                    True,
                )
            )
        return self.dedup(reports)

    def _scan(
        self, func: LoweredFunction, is_user_controlled, interprocedural: bool
    ) -> List[BugReport]:
        reports: List[BugReport] = []
        checked: Set[str] = set()
        for stmt in func.stmts:
            if stmt.kind == "rangetest" and stmt.rhs:
                checked.add(stmt.rhs)
                continue
            if stmt.kind not in ("load", "store") or not stmt.index_var:
                continue
            index = stmt.index_var
            if index in checked or index.startswith("%"):
                continue
            if not is_user_controlled(index):
                continue
            reports.append(
                BugReport(
                    checker=self.name,
                    function=func.name,
                    module=func.module,
                    line=stmt.line,
                    variable=index,
                    message=(
                        f"user-controlled index {index!r} used without a "
                        "bounds check"
                    ),
                    interprocedural=interprocedural,
                )
            )
        return reports
