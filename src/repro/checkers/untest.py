"""UNTest: unnecessary, over-protective NULL tests (§5.1).

A new, purely interprocedural checker from the paper: it flags NULL
tests on pointers that *no* calling context can make NULL.  Such tests
are not bugs but create extra basic blocks that block compiler
optimizations.  This checker has no baseline version — it only exists
because the interprocedural dataflow analysis does.
"""

from __future__ import annotations

from typing import List, Set

from repro.checkers.base import AnalysisContext, BugReport, Checker
from repro.frontend.lower import LoweredFunction


class UNTestChecker(Checker):
    name = "UNTest"

    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        """No baseline exists (the paper marks this column N/A)."""
        return []

    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("nullflow")
        roots = set(ctx.pg.callgraph.roots())
        reports: List[BugReport] = []
        for func in ctx.functions():
            unknown = self._unknown_vars(ctx, func, func.name in roots)
            for stmt in func.stmts:
                if stmt.kind != "test" or not stmt.rhs:
                    continue
                var = stmt.rhs
                if var in unknown or var.startswith("%"):
                    continue
                if var not in func.pointer_vars:
                    continue  # integer truthiness tests are not NULL tests
                if not ctx.nullflow.never_receives(func.name, var):
                    continue
                reports.append(
                    BugReport(
                        checker=self.name,
                        function=func.name,
                        module=func.module,
                        line=stmt.line,
                        variable=var,
                        message=(
                            f"NULL test on {var!r} is unnecessary: no calling "
                            "context can make it NULL"
                        ),
                        interprocedural=True,
                    )
                )
        return self.dedup(reports)

    @staticmethod
    def _unknown_vars(
        ctx: AnalysisContext, func: LoweredFunction, is_root: bool
    ) -> Set[str]:
        """Variables whose values come from outside the analyzed world.

        Results of external (undefined) calls and the parameters of root
        functions (nobody calls them, so nothing constrains their
        arguments) may legitimately be NULL even when the closed-world
        analysis sees no NULL flow; tests on them are never flagged.
        """
        defined = set(ctx.pg.lowered.functions)
        unknown: Set[str] = set()
        if is_root:
            unknown.update(func.params)
        for stmt in func.stmts:
            if (
                stmt.kind == "call"
                and stmt.lhs
                and stmt.callee not in defined
            ):
                unknown.add(stmt.lhs)
        return unknown
