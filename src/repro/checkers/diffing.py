"""Report diffing: what changed since the last analysis run?

The paper's motivating workflow is daily development — "developers can
check their code on a regular basis" (§1.3).  What a developer acts on
day-to-day is the *delta*: findings introduced or fixed since the last
run, not the full report.  This module diffs two checker runs (or their
serialized forms) into introduced/fixed/persisting buckets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Set, Tuple, Union

from repro.checkers.base import BugReport
from repro.checkers.driver import CheckerRunResult

PathLike = Union[str, Path]

Key = Tuple[str, str, str]  # (checker, function, variable)


def _keys(reports: Iterable[BugReport]) -> Set[Key]:
    return {
        (r.checker, r.function, r.variable or "") for r in reports
    }


@dataclass
class FindingsDiff:
    """Delta between two runs of the same checker battery."""

    introduced: List[Key] = field(default_factory=list)
    fixed: List[Key] = field(default_factory=list)
    persisting: List[Key] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        """True when the change introduced no new findings."""
        return not self.introduced

    def summary(self) -> str:
        return (
            f"+{len(self.introduced)} introduced, "
            f"-{len(self.fixed)} fixed, "
            f"{len(self.persisting)} persisting"
        )


def diff_reports(
    before: Iterable[BugReport], after: Iterable[BugReport]
) -> FindingsDiff:
    """Diff two flat report lists by (checker, function, variable)."""
    old, new = _keys(before), _keys(after)
    return FindingsDiff(
        introduced=sorted(new - old),
        fixed=sorted(old - new),
        persisting=sorted(old & new),
    )


def diff_runs(
    before: CheckerRunResult,
    after: CheckerRunResult,
    mode: str = "augmented",
) -> FindingsDiff:
    """Diff two full checker runs in the given mode."""
    return diff_reports(before.all_reports(mode), after.all_reports(mode))


# ---------------------------------------------------------------------------
# persistence: snapshot a run so tomorrow's run can diff against it
# ---------------------------------------------------------------------------


def save_findings(reports: Iterable[BugReport], path: PathLike) -> None:
    """Serialize reports to JSON (a findings snapshot for later diffing)."""
    payload = [
        {
            "checker": r.checker,
            "function": r.function,
            "module": r.module,
            "line": r.line,
            "variable": r.variable,
            "message": r.message,
            "interprocedural": r.interprocedural,
        }
        for r in reports
    ]
    Path(path).write_text(json.dumps(payload, indent=2))


def load_findings(path: PathLike) -> List[BugReport]:
    """Load a findings snapshot written by :func:`save_findings`."""
    payload = json.loads(Path(path).read_text())
    return [BugReport(**entry) for entry in payload]
