"""Run all checkers in both modes and score them against ground truth.

This is the code path behind Tables 3 and 4: compile a codebase, run the
two Graspan analyses, run every checker as baseline (BL) and augmented
(GR), and — because our workloads are generated with known injected
defects — compute the reported/false-positive counts the paper derived
from manual inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.dataflow import NullDataflowAnalysis, TaintDataflowAnalysis
from repro.analysis.escape import EscapeAnalysis
from repro.analysis.pointsto import PointsToAnalysis
from repro.analysis.races import RaceAnalysis
from repro.analysis.taint import TaintAnalysis
from repro.checkers.asyncmisuse import AsyncChecker
from repro.checkers.base import AnalysisContext, BugReport, Checker
from repro.checkers.block import BlockChecker
from repro.checkers.free import FreeChecker
from repro.checkers.lock import LockChecker
from repro.checkers.null import NullChecker
from repro.checkers.pnull import PNullChecker
from repro.checkers.race import RaceChecker
from repro.checkers.range import RangeChecker
from repro.checkers.size import SizeChecker
from repro.checkers.taint import TaintChecker
from repro.checkers.untest import UNTestChecker
from repro.frontend.graphgen import ProgramGraphs

PathLike = Union[str, Path]

#: The checker registry, in Table 1 order plus the new UNTest, Race,
#: Taint, and Async checkers.
ALL_CHECKERS: Tuple[type, ...] = (
    BlockChecker,
    NullChecker,
    RangeChecker,
    LockChecker,
    FreeChecker,
    SizeChecker,
    PNullChecker,
    UNTestChecker,
    RaceChecker,
    TaintChecker,
    AsyncChecker,
)


@dataclass(frozen=True)
class GroundTruthBug:
    """One injected defect the workload generator knows about."""

    checker: str
    function: str
    variable: Optional[str]

    def match_key(self) -> Tuple[str, str, Optional[str]]:
        return (self.checker, self.function, self.variable)


@dataclass
class CheckerScore:
    """RE/FP/TP/FN for one checker in one mode (a Table 3 cell)."""

    reported: int
    true_positives: int
    false_positives: int
    false_negatives: int


@dataclass
class CheckerRunResult:
    """All reports from one full checking run."""

    baseline: Dict[str, List[BugReport]]
    augmented: Dict[str, List[BugReport]]
    context: AnalysisContext

    def all_reports(self, mode: str) -> List[BugReport]:
        table = self.baseline if mode == "baseline" else self.augmented
        return [r for reports in table.values() for r in reports]

    def score(
        self, truth: Sequence[GroundTruthBug], mode: str, checker: str
    ) -> CheckerScore:
        reports = (self.baseline if mode == "baseline" else self.augmented).get(
            checker, []
        )
        truth_keys = {t.match_key() for t in truth if t.checker == checker}
        report_keys = {r.match_key() for r in reports}
        tp_keys = report_keys & truth_keys
        return CheckerScore(
            reported=len(report_keys),
            true_positives=len(tp_keys),
            false_positives=len(report_keys - truth_keys),
            false_negatives=len(truth_keys - report_keys),
        )

    def module_breakdown(self, mode: str, checker: str) -> Dict[str, int]:
        """Reports per module — the Table 4 breakdown."""
        table = self.baseline if mode == "baseline" else self.augmented
        out: Dict[str, int] = {}
        for report in table.get(checker, []):
            out[report.module] = out.get(report.module, 0) + 1
        return out


def run_analyses(
    pg: ProgramGraphs,
    max_edges_per_partition: Optional[int] = None,
    workdir: Optional[PathLike] = None,
    num_threads: int = 1,
    parallel_backend: Optional[str] = None,
    closure_store=None,
) -> AnalysisContext:
    """Run the four engine-backed analyses — pointer, NULL dataflow,
    user-data dataflow, and the taint/injection closure — plus the
    closure-reusing escape and race clients; bundle into a context.
    The Taint and Async checkers consume the bundled results without
    further engine runs.

    ``closure_store`` (a :class:`repro.engine.store.ClosureStore`)
    routes all four closures through the persistent cache: unchanged
    programs hit finished entries, edited programs re-close
    incrementally from the nearest base (DESIGN.md §14).  The store's
    engine configuration wins over the sizing arguments here."""
    pointsto = PointsToAnalysis(
        max_edges_per_partition=max_edges_per_partition,
        workdir=workdir,
        num_threads=num_threads,
        parallel_backend=parallel_backend,
        closure_store=closure_store,
    ).run(pg)
    nullflow = NullDataflowAnalysis(
        max_edges_per_partition=max_edges_per_partition,
        workdir=workdir,
        num_threads=num_threads,
        parallel_backend=parallel_backend,
        closure_store=closure_store,
    ).run(pg, pointsto=pointsto)
    taintflow = TaintDataflowAnalysis(
        max_edges_per_partition=max_edges_per_partition,
        workdir=workdir,
        num_threads=num_threads,
        parallel_backend=parallel_backend,
        closure_store=closure_store,
    ).run(pg, pointsto=pointsto)
    taint = TaintAnalysis(
        max_edges_per_partition=max_edges_per_partition,
        workdir=workdir,
        num_threads=num_threads,
        parallel_backend=parallel_backend,
        closure_store=closure_store,
    ).run(pg, pointsto=pointsto)
    # Closure clients: escape + race facts fall out of the pointer
    # closure already in hand — no further engine runs.
    escape = EscapeAnalysis().run(pg, pointsto)
    races = RaceAnalysis().run(pg, pointsto, escape=escape)
    return AnalysisContext(
        pg=pg,
        pointsto=pointsto,
        nullflow=nullflow,
        taintflow=taintflow,
        taint=taint,
        escape=escape,
        races=races,
    )


def run_checkers(
    ctx: AnalysisContext,
    checkers: Optional[Iterable[Checker]] = None,
) -> CheckerRunResult:
    """Run every checker in both modes over a prepared context."""
    instances = (
        list(checkers) if checkers is not None else [cls() for cls in ALL_CHECKERS]
    )
    baseline: Dict[str, List[BugReport]] = {}
    augmented: Dict[str, List[BugReport]] = {}
    for checker in instances:
        baseline[checker.name] = checker.check_baseline(ctx)
        augmented[checker.name] = checker.check_augmented(ctx)
    return CheckerRunResult(baseline=baseline, augmented=augmented, context=ctx)


def check_program(pg: ProgramGraphs, **analysis_opts) -> CheckerRunResult:
    """One-call convenience: analyses + all checkers."""
    return run_checkers(run_analyses(pg, **analysis_opts))
