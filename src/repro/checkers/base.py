"""Checker framework: reports, shared context, and scan helpers.

Each checker from Table 1 is implemented twice, mirroring the paper's
evaluation: a **baseline** pattern-matching version with the documented
heuristics and limitations, and a **Graspan-augmented** version that
consults the interprocedural pointer/alias and dataflow analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import SourceFlowResult
from repro.analysis.escape import EscapeResult
from repro.analysis.pointsto import PointsToResult
from repro.analysis.races import RaceResult
from repro.analysis.taint import TaintResult
from repro.frontend.graphgen import ProgramGraphs
from repro.frontend.lower import LoweredFunction, LStmt


@dataclass(frozen=True)
class BugReport:
    """One warning produced by a checker."""

    checker: str
    function: str
    module: str
    line: int
    variable: Optional[str]
    message: str
    interprocedural: bool = False  # True when the Graspan analyses found it

    def match_key(self) -> Tuple[str, str, Optional[str]]:
        """The key ground-truth scoring matches on."""
        return (self.checker, self.function, self.variable)


@dataclass
class AnalysisContext:
    """Everything a checker may consult."""

    pg: ProgramGraphs
    pointsto: Optional[PointsToResult] = None
    nullflow: Optional[SourceFlowResult] = None
    taintflow: Optional[SourceFlowResult] = None
    taint: Optional[TaintResult] = None
    # Closure *clients* — derived from pointsto without an engine run.
    escape: Optional[EscapeResult] = None
    races: Optional[RaceResult] = None

    @property
    def lowered(self):
        return self.pg.lowered

    def functions(self) -> Iterable[LoweredFunction]:
        return self.pg.lowered.functions.values()

    def require(self, *names: str) -> None:
        for name in names:
            if getattr(self, name) is None:
                raise ValueError(
                    f"this checker's augmented mode needs the {name} analysis result"
                )


class Checker:
    """Base class; subclasses set ``name`` and override the two modes."""

    name: str = "?"

    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        raise NotImplementedError

    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared scan helpers
    # ------------------------------------------------------------------
    @staticmethod
    def deref_sites(func: LoweredFunction) -> List[Tuple[int, str, LStmt]]:
        """(index, base-variable, stmt) of every dereference in order."""
        sites = []
        for i, stmt in enumerate(func.stmts):
            if stmt.kind == "load":
                sites.append((i, stmt.rhs, stmt))
            elif stmt.kind == "store":
                sites.append((i, stmt.lhs, stmt))
        return sites

    @staticmethod
    def is_protected(func: LoweredFunction, index: int, var: str) -> bool:
        """Is the statement at ``index`` protected by a NULL check on ``var``?

        Protection means an enclosing non-NULL guard, or any earlier test
        on the variable in the same function (the ``if (!p) return;``
        idiom leaves later statements outside the guard's scope but
        clearly checked).
        """
        stmt = func.stmts[index]
        for guard in stmt.guards:
            if guard.var == var and guard.nonnull:
                return True
        for earlier in func.stmts[:index]:
            if earlier.kind == "test" and earlier.rhs == var:
                return True
        return False

    @staticmethod
    def reassigned_between(
        func: LoweredFunction, start: int, end: int, var: str
    ) -> bool:
        """Was ``var`` written by any statement in ``(start, end)``?"""
        for stmt in func.stmts[start + 1 : end]:
            if stmt.lhs == var and stmt.kind in (
                "copy",
                "load",
                "alloc",
                "null",
                "const",
                "call",
                "binop",
                "addrof",
                "funcref",
            ):
                return True
        return False

    @staticmethod
    def dedup(reports: Sequence[BugReport]) -> List[BugReport]:
        seen: Set[Tuple] = set()
        out: List[BugReport] = []
        for report in reports:
            key = (report.checker, report.function, report.variable, report.line)
            if key not in seen:
                seen.add(key)
                out.append(report)
        return out
