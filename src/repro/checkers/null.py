"""The Null checker: NULL pointer dereferences (Table 1, row 2).

Baseline heuristic (Chou et al. / Palix et al.): only functions that
*directly* return an explicitly assigned NULL are considered NULL
producers; a dereference of such a call's result without a check is
reported.  NULL born mid-callee and propagated through intermediate
returns or parameters is missed entirely (false negatives), and a NULL
return that is dead on every path still triggers reports (false
positives).

Graspan augmentation: the interprocedural NULL dataflow analysis marks
every variable any calling context can make NULL; unprotected
dereferences of those are reported regardless of how far the NULL
traveled.
"""

from __future__ import annotations

from typing import List, Set

from repro.checkers.base import AnalysisContext, BugReport, Checker


class NullChecker(Checker):
    name = "Null"

    # ------------------------------------------------------------------
    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        returners = self._direct_null_returners(ctx)
        reports: List[BugReport] = []
        for func in ctx.functions():
            module = func.module
            for i, stmt in enumerate(func.stmts):
                if stmt.kind != "call" or stmt.callee not in returners:
                    continue
                v = stmt.lhs
                if not v:
                    continue
                for j, base, deref in self.deref_sites(func):
                    if j <= i or base != v:
                        continue
                    if self.reassigned_between(func, i, j, v):
                        continue
                    if self.is_protected(func, j, v):
                        continue
                    reports.append(
                        BugReport(
                            checker=self.name,
                            function=func.name,
                            module=module,
                            line=deref.line,
                            variable=v,
                            message=(
                                f"dereference of {v!r}, result of "
                                f"{stmt.callee}() which returns NULL"
                            ),
                        )
                    )
        return self.dedup(reports)

    @staticmethod
    def _direct_null_returners(ctx: AnalysisContext) -> Set[str]:
        """Functions with a return variable assigned NULL in their own body."""
        out: Set[str] = set()
        for func in ctx.functions():
            returned = set(func.return_vars())
            if not returned:
                continue
            for stmt in func.stmts:
                if stmt.kind == "null" and stmt.lhs in returned:
                    out.add(func.name)
                    break
        return out

    # ------------------------------------------------------------------
    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("nullflow")
        reports: List[BugReport] = []
        for func in ctx.functions():
            for j, base, deref in self.deref_sites(func):
                if base.startswith("%"):
                    continue  # temps carry no user-facing name
                if self.is_protected(func, j, base):
                    continue
                if not ctx.nullflow.may_receive(func.name, base):
                    continue
                contexts = ctx.nullflow.contexts_reaching(func.name, base)
                reports.append(
                    BugReport(
                        checker=self.name,
                        function=func.name,
                        module=func.module,
                        line=deref.line,
                        variable=base,
                        message=(
                            f"dereference of {base!r}; NULL may reach it in "
                            f"{len(contexts)} calling context(s)"
                        ),
                        interprocedural=True,
                    )
                )
        return self.dedup(reports)
