"""Taint: unsanitized input reaching an injection sink (new client).

Baseline heuristic: purely intraprocedural and name-keyed.  One linear
pass per function tracks which local names currently hold ``input()``
data; a ``query()``/``exec()`` argument in that set is reported.  Two
documented blind spots follow: taint entering through a call (the
source in a callee, the sink in the caller) is invisible, and taint
stored to the heap and reloaded through an alias is invisible (the
load kills the name).  One documented *over*-report: the baseline does
not model the cleanser — ``sanitize()`` is treated like any other copy,
so sanitized data still looks tainted (false alarms on every
sanitizer-decoy gadget).

Graspan augmentation: consumes the taint closure
(:mod:`repro.analysis.taint` — grammar ``TT ::= TS | TT TD`` over the
taint graph).  Interprocedural flows ride the context-sensitive ``A``
edges, heap flows ride the alias bridges, and sanitization is encoded
structurally (no edge through a cleanser), so the checker is a lookup:
a sink argument is reported iff its clone vertex carries a ``TT`` edge.
No extra engine run — the closure was computed once by
:func:`repro.checkers.driver.run_analyses`.
"""

from __future__ import annotations

from typing import List, Set

from repro.checkers.base import AnalysisContext, BugReport, Checker
from repro.frontend.ast import TAINT_SOURCES


class TaintChecker(Checker):
    name = "Taint"

    # ------------------------------------------------------------------
    # baseline: intraprocedural, name-keyed, cleanser-blind
    # ------------------------------------------------------------------
    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        reports: List[BugReport] = []
        for func in ctx.functions():
            tainted: Set[str] = set()
            for stmt in func.stmts:
                if stmt.kind == "call":
                    if stmt.callee in TAINT_SOURCES and stmt.lhs:
                        tainted.add(stmt.lhs)
                    elif stmt.lhs:
                        tainted.discard(stmt.lhs)  # opaque call: kills
                elif stmt.kind == "sink":
                    for var in stmt.args:
                        if var in tainted:
                            reports.append(
                                BugReport(
                                    checker=self.name,
                                    function=func.name,
                                    module=func.module,
                                    line=stmt.line,
                                    variable=var,
                                    message=(
                                        f"input() data reaches "
                                        f"{stmt.callee}({var}) in this "
                                        "function"
                                    ),
                                )
                            )
                elif stmt.kind == "copy" and stmt.lhs:
                    if stmt.rhs in tainted:
                        tainted.add(stmt.lhs)
                    else:
                        tainted.discard(stmt.lhs)
                elif stmt.kind == "sanitize" and stmt.lhs:
                    # Documented flaw: the baseline treats the cleanser
                    # like a copy, so sanitized data still looks tainted.
                    if stmt.rhs in tainted:
                        tainted.add(stmt.lhs)
                    else:
                        tainted.discard(stmt.lhs)
                elif stmt.kind == "binop" and stmt.lhs:
                    if any(op in tainted for op in stmt.operands):
                        tainted.add(stmt.lhs)
                    else:
                        tainted.discard(stmt.lhs)
                elif stmt.kind in ("load", "alloc", "null", "const") and stmt.lhs:
                    tainted.discard(stmt.lhs)  # heap/fresh values: kills
        return self.dedup(reports)

    # ------------------------------------------------------------------
    # augmented: lookup in the taint closure
    # ------------------------------------------------------------------
    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("taint")
        reports: List[BugReport] = []
        for flow in ctx.taint.flows:
            reports.append(
                BugReport(
                    checker=self.name,
                    function=flow.function,
                    module=flow.module,
                    line=flow.line,
                    variable=flow.var,
                    message=(
                        f"unsanitized input() data reaches "
                        f"{flow.sink}({flow.var}) "
                        f"[{len(flow.contexts)} context"
                        f"{'s' if len(flow.contexts) != 1 else ''}]"
                    ),
                    interprocedural=True,
                )
            )
        return self.dedup(reports)
