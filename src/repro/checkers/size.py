"""Size: allocation sizes inconsistent with the pointer's type (Table 1).

Baseline heuristic: look at allocation sites only — ``p = malloc(s)``
where the literal ``s`` is not a multiple of ``sizeof(*p)``.  If the
badly-sized object later flows into a *differently typed* pointer, the
allocation site itself looks fine and the problem is missed.

Graspan augmentation: for every allocation object, the points-to
solution lists *all* variables that may point to it; each variable whose
pointee type does not divide the allocation size is reported.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.checkers.base import AnalysisContext, BugReport, Checker


class SizeChecker(Checker):
    name = "Size"

    def check_baseline(self, ctx: AnalysisContext) -> List[BugReport]:
        reports: List[BugReport] = []
        for func in ctx.functions():
            for stmt in func.stmts:
                if stmt.kind != "alloc" or stmt.size is None or not stmt.lhs:
                    continue
                elem = func.var_sizes.get(stmt.lhs)
                if elem is None or stmt.lhs.startswith("%"):
                    continue
                if stmt.size % elem != 0:
                    reports.append(
                        BugReport(
                            checker=self.name,
                            function=func.name,
                            module=func.module,
                            line=stmt.line,
                            variable=stmt.lhs,
                            message=(
                                f"malloc({stmt.size}) assigned to {stmt.lhs!r} "
                                f"whose element size is {elem}"
                            ),
                        )
                    )
        return self.dedup(reports)

    def check_augmented(self, ctx: AnalysisContext) -> List[BugReport]:
        ctx.require("pointsto")
        reports = list(self.check_baseline(ctx))
        namer = ctx.pg.namer
        alloc_size_cache: Dict[int, Optional[int]] = {}

        def size_of_object(obj_vid: int) -> Optional[int]:
            if obj_vid in alloc_size_cache:
                return alloc_size_cache[obj_vid]
            info = namer.info(obj_vid)
            size: Optional[int] = None
            template = ctx.pg.templates.get(info.function)
            if template is not None:
                size = template.alloc_sizes.get(info.symbol)
            alloc_size_cache[obj_vid] = size
            return size

        for func in ctx.functions():
            for var, elem in func.var_sizes.items():
                if var not in func.pointer_vars or var.startswith("%"):
                    continue
                for vid in namer.vertices_for(func.name, var):
                    for obj in ctx.pointsto.points_to(vid):
                        size = size_of_object(obj)
                        if size is None or size % elem == 0:
                            continue
                        reports.append(
                            BugReport(
                                checker=self.name,
                                function=func.name,
                                module=func.module,
                                line=namer.line(vid) or func.line,
                                variable=var,
                                message=(
                                    f"{var!r} (element size {elem}) may point "
                                    f"to a {size}-byte allocation "
                                    f"({namer.describe(obj)})"
                                ),
                                interprocedural=True,
                            )
                        )
        return self.dedup(reports)
