"""Generated evaluation workloads with injected ground-truth defects."""

from repro.workloads.synthetic import (
    LINUX_MODULE_WEIGHTS,
    SyntheticProgramBuilder,
    Workload,
    WorkloadSpec,
    generate,
)
from repro.workloads.programs import (
    ALL_WORKLOADS,
    PAPER_TABLE2,
    httpd_like,
    linux_like,
    postgresql_like,
    workload_by_name,
)

__all__ = [
    "LINUX_MODULE_WEIGHTS",
    "SyntheticProgramBuilder",
    "Workload",
    "WorkloadSpec",
    "generate",
    "ALL_WORKLOADS",
    "PAPER_TABLE2",
    "httpd_like",
    "linux_like",
    "postgresql_like",
    "workload_by_name",
]
