"""Synthetic MiniC codebase generation with known injected defects.

We cannot compile the Linux kernel here (see DESIGN.md §1), so the
evaluation workloads are generated: deterministic (seeded) MiniC
codebases whose *shape* matches what drives Graspan's behaviour —

* a layered call DAG whose full context-sensitive inlining grows
  multiplicatively with depth (the #Inlines column of Table 2),
* pointer plumbing with bounded value-flow cones, so the transitive
  closure grows by a small factor rather than quadratically (the
  3-100x edge growth of Table 5),
* Linux-style module taxonomy with `drivers` carrying the most code and
  the most defects (Table 4), and
* **bug gadgets**: self-contained function groups that plant exactly the
  defect classes of Table 3, each recorded as a
  :class:`~repro.checkers.driver.GroundTruthBug` so reported/false-
  positive counts can be computed mechanically instead of by the paper's
  manual inspection.

Every gadget is designed against the *documented* blind spots of the
baseline checkers: deep NULL chains the depth-0 Null checker cannot see,
alias-hidden use-after-free, lock aliasing, blocking through function
pointers, transitively tainted indices, and badly-sized allocations that
only look wrong at a differently-typed alias.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.checkers.driver import GroundTruthBug

#: Linux-like module mass (Table 4's taxonomy; drivers dominates).
LINUX_MODULE_WEIGHTS: Dict[str, float] = {
    "drivers": 0.30,
    "net": 0.14,
    "fs": 0.11,
    "sound": 0.08,
    "arch": 0.08,
    "kernel": 0.06,
    "mm": 0.05,
    "security": 0.04,
    "lib": 0.04,
    "block": 0.03,
    "crypto": 0.02,
    "ipc": 0.02,
    "init": 0.01,
    "misc": 0.02,
}


@dataclass
class WorkloadSpec:
    """Everything that determines one generated codebase."""

    name: str
    seed: int = 1
    # call-structure shape (drives #Inlines)
    num_roots: int = 12
    layers: int = 4
    fanout: int = 2
    layer_width: int = 10  # defined functions per non-root layer
    # per-function body richness
    pointer_chain: int = 3  # length of local copy chains
    base_null_return_rate: float = 0.25  # fraction of plumbing functions
    # that may return NULL on an error path (drives dataflow-graph growth
    # and keeps many of the plumbing NULL tests genuinely necessary)
    # gadget counts (each plants ground truth)
    null_deep: int = 6
    null_deep_chain: int = 3  # passthrough hops per deep NULL bug
    null_decoys: int = 2  # flow-insensitive FPs (GR reports, not a bug)
    null_shallow_decoys: int = 2  # dead-NULL returns (BL FPs)
    null_safe: int = 2  # guarded negatives (nobody should report)
    untest: int = 10
    untest_negative: int = 3
    free_alias: int = 3
    free_decoys: int = 2
    lock_alias: int = 2
    lock_decoys: int = 2
    block_fp: int = 2
    block_wrapper: int = 1
    range_deep: int = 3
    range_decoys: int = 1
    size_direct: int = 2
    size_flow: int = 2
    size_decoys: int = 1
    pnull_bugs: int = 2
    pnull_decoys: int = 2
    race_unguarded: int = 2
    race_heap: int = 2
    race_guarded_decoys: int = 2
    taint_direct: int = 2
    taint_flow: int = 3
    taint_flow_chain: int = 2  # passthrough hops per deep taint flow
    taint_heap: int = 2
    taint_sanitizer_decoys: int = 2
    async_direct: int = 2
    async_deep: int = 2
    async_safe_decoys: int = 2
    recursion_gadgets: int = 1
    module_weights: Dict[str, float] = field(
        default_factory=lambda: dict(LINUX_MODULE_WEIGHTS)
    )

    def scaled(self, factor: float) -> "WorkloadSpec":
        """A proportionally larger/smaller copy of this spec."""
        import math

        spec = WorkloadSpec(**{**self.__dict__})
        spec.module_weights = dict(self.module_weights)
        spec.num_roots = max(2, int(round(self.num_roots * factor)))
        spec.layer_width = max(2, int(round(self.layer_width * factor)))
        for name in (
            "null_deep",
            "null_decoys",
            "null_shallow_decoys",
            "null_safe",
            "untest",
            "untest_negative",
            "free_alias",
            "free_decoys",
            "lock_alias",
            "lock_decoys",
            "block_fp",
            "block_wrapper",
            "range_deep",
            "range_decoys",
            "size_direct",
            "size_flow",
            "size_decoys",
            "pnull_bugs",
            "pnull_decoys",
            "race_unguarded",
            "race_heap",
            "race_guarded_decoys",
            "taint_direct",
            "taint_flow",
            "taint_heap",
            "taint_sanitizer_decoys",
            "async_direct",
            "async_deep",
            "async_safe_decoys",
        ):
            setattr(spec, name, max(1, int(math.ceil(getattr(self, name) * factor))))
        return spec


@dataclass
class Workload:
    """A generated codebase plus its ground truth."""

    name: str
    sources: List[Tuple[str, str]]  # (module, source text)
    ground_truth: List[GroundTruthBug]
    spec: WorkloadSpec
    #: Functions emitted as false-alarm bait (sanitizer/spawn decoys):
    #: a correct augmented checker reports nothing in any of them.
    decoy_functions: List[str] = field(default_factory=list)

    @property
    def loc(self) -> int:
        return sum(src.count("\n") + 1 for _, src in self.sources)

    def source_text(self) -> str:
        return "\n".join(src for _, src in self.sources)

    def compile(self, max_inlines: int = 5_000_000):
        """Parse + lower + generate graphs (see repro.frontend)."""
        from repro.frontend import compile_program

        return compile_program(self.sources, max_inlines=max_inlines)

    def truth_for(self, checker: str) -> List[GroundTruthBug]:
        from repro.checkers.driver import ALL_CHECKERS

        known = {cls.name for cls in ALL_CHECKERS}
        if checker not in known:
            raise KeyError(
                f"unknown checker {checker!r}; expected one of {sorted(known)}"
            )
        return [t for t in self.ground_truth if t.checker == checker]


class _ModuleSources:
    """Accumulates function text per module."""

    def __init__(self, rng: random.Random, weights: Dict[str, float]) -> None:
        self._rng = rng
        self._modules = list(weights)
        self._weights = [weights[m] for m in self._modules]
        self._chunks: Dict[str, List[str]] = {m: [] for m in self._modules}

    def pick_module(self, bias_drivers: bool = False) -> str:
        if bias_drivers and self._rng.random() < 0.25:
            return "drivers" if "drivers" in self._chunks else self._modules[0]
        return self._rng.choices(self._modules, weights=self._weights, k=1)[0]

    def add(self, module: str, text: str) -> None:
        self._chunks[module].append(text)

    def finish(self) -> List[Tuple[str, str]]:
        return [
            (module, "\n".join(chunks))
            for module, chunks in self._chunks.items()
            if chunks
        ]


class SyntheticProgramBuilder:
    """Generates one :class:`Workload` from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.sources = _ModuleSources(self.rng, spec.module_weights)
        self.truth: List[GroundTruthBug] = []
        self.decoys: List[str] = []
        self._uid = 0

    def _next_id(self) -> int:
        self._uid += 1
        return self._uid

    # ------------------------------------------------------------------
    def build(self) -> Workload:
        self._emit_base_layers()
        for _ in range(self.spec.recursion_gadgets):
            self._emit_recursion_gadget()
        for _ in range(self.spec.null_deep):
            self._emit_null_deep()
        for _ in range(self.spec.null_decoys):
            self._emit_null_flow_decoy()
        for _ in range(self.spec.null_shallow_decoys):
            self._emit_null_shallow_decoy()
        for _ in range(self.spec.null_safe):
            self._emit_null_safe()
        for _ in range(self.spec.untest):
            self._emit_untest(positive=True)
        for _ in range(self.spec.untest_negative):
            self._emit_untest(positive=False)
        for _ in range(self.spec.free_alias):
            self._emit_free_alias()
        for _ in range(self.spec.free_decoys):
            self._emit_free_decoy()
        for _ in range(self.spec.lock_alias):
            self._emit_lock_alias()
        for _ in range(self.spec.lock_decoys):
            self._emit_lock_decoy()
        for _ in range(self.spec.block_fp):
            self._emit_block_fp()
        for _ in range(self.spec.block_wrapper):
            self._emit_block_wrapper()
        for _ in range(self.spec.range_deep):
            self._emit_range_deep()
        for _ in range(self.spec.range_decoys):
            self._emit_range_decoy()
        for _ in range(self.spec.size_direct):
            self._emit_size_direct()
        for _ in range(self.spec.size_flow):
            self._emit_size_flow()
        for _ in range(self.spec.size_decoys):
            self._emit_size_decoy()
        for _ in range(self.spec.pnull_bugs):
            self._emit_pnull_bug()
        for _ in range(self.spec.pnull_decoys):
            self._emit_pnull_decoy()
        for _ in range(self.spec.race_unguarded):
            self._emit_race_unguarded()
        for _ in range(self.spec.race_heap):
            self._emit_race_heap()
        for _ in range(self.spec.race_guarded_decoys):
            self._emit_race_guarded_decoy()
        for _ in range(self.spec.taint_direct):
            self._emit_taint_direct()
        for _ in range(self.spec.taint_flow):
            self._emit_taint_flow()
        for _ in range(self.spec.taint_heap):
            self._emit_taint_heap()
        for _ in range(self.spec.taint_sanitizer_decoys):
            self._emit_taint_sanitizer_decoy()
        for _ in range(self.spec.async_direct):
            self._emit_async_direct()
        for _ in range(self.spec.async_deep):
            self._emit_async_deep()
        for _ in range(self.spec.async_safe_decoys):
            self._emit_async_safe_decoy()
        return Workload(
            name=self.spec.name,
            sources=self.sources.finish(),
            ground_truth=self.truth,
            spec=self.spec,
            decoy_functions=self.decoys,
        )

    # ------------------------------------------------------------------
    # base plumbing: the layered call DAG
    # ------------------------------------------------------------------
    def _emit_base_layers(self) -> None:
        """Layered functions passing pointers down and results up.

        Roots call ``fanout`` random functions of layer 1, which call
        layer 2, and so on.  Full inlining clones the whole subtree per
        call site, so inline counts grow ~ ``num_roots * fanout^layers``.
        """
        spec = self.spec
        layer_names: List[List[str]] = []
        for layer in range(spec.layers):
            width = spec.layer_width if layer > 0 else spec.num_roots
            names = [f"base_l{layer}_{i}" for i in range(width)]
            layer_names.append(names)

        # Choose every call list first so we know which functions end up
        # with callers: param-guard ground truth only applies to those
        # (an uncalled function's parameters have unknown provenance and
        # the UNTest checker rightly ignores tests on them).
        call_lists: Dict[str, List[str]] = {}
        called: set = set()
        returns_null: Dict[str, bool] = {}
        for layer in range(spec.layers):
            for name in layer_names[layer]:
                callees: List[str] = []
                if layer + 1 < spec.layers:
                    callees = [
                        self.rng.choice(layer_names[layer + 1])
                        for _ in range(spec.fanout)
                    ]
                call_lists[name] = callees
                called.update(callees)
                returns_null[name] = (
                    layer > 0 and self.rng.random() < spec.base_null_return_rate
                )

        for layer in reversed(range(spec.layers)):
            for name in layer_names[layer]:
                self._emit_base_function(
                    name,
                    call_lists[name],
                    is_root=(layer == 0),
                    has_caller=name in called,
                    returns_null=returns_null[name],
                    callee_returns_null=[
                        returns_null[c] for c in call_lists[name]
                    ],
                )

    def _emit_base_function(
        self,
        name: str,
        callees: Sequence[str],
        is_root: bool,
        has_caller: bool = True,
        returns_null: bool = False,
        callee_returns_null: Sequence[bool] = (),
    ) -> None:
        """One benign plumbing function with bounded value-flow cones.

        ``returns_null`` adds an error path returning NULL (callers guard
        the result, so no bug); it feeds NULL flow into the dataflow
        graph at realistic density.
        """
        module = self.sources.pick_module()
        chain = self.spec.pointer_chain
        lines: List[str] = []
        params = "void" if is_root else "int *a, int n"
        ret_type = "void" if is_root else "void *"
        lines.append(f"{ret_type} {name}({params}) {{")
        lines.append("    int *p0;")
        for i in range(1, chain + 1):
            lines.append(f"    int *p{i};")
        lines.append("    int *buf;")
        lines.append("    int **slot;")
        if returns_null:
            # An error path: NULL percolates through a short local chain
            # before being returned, mirroring kernel-style error
            # propagation and giving the NULL dataflow closure real work.
            lines.append("    int *err0;")
            lines.append("    err0 = NULL;")
            for i in range(1, chain + 1):
                lines.append(f"    int *err{i};")
                lines.append(f"    err{i} = err{i - 1};")
            lines.append(f"    if (n < 0) {{ return err{chain}; }}")
        lines.append(f"    p0 = malloc({self.rng.choice([4, 8, 16])});")
        for i in range(1, chain + 1):
            lines.append(f"    p{i} = p{i - 1};")
        # store/load through a local slot: exercises D edges + aliases,
        # but stays inside this clone (no cross-clone blowup).
        lines.append("    slot = &buf;")
        lines.append(f"    *slot = p{chain};")
        if not is_root:
            lines.append("    if (a) { *a = n; }")
        for k, callee in enumerate(callees):
            lines.append(f"    int *r{k};")
            lines.append(f"    r{k} = {callee}(p{chain}, n + {k});" if not is_root
                         else f"    r{k} = {callee}(p{chain}, {k});")
        if callees:
            lines.append("    if (r0) { *r0 = 1; }")
        if not is_root:
            lines.append(f"    return p{self.rng.randrange(chain + 1)};")
        lines.append("}")
        self.sources.add(module, "\n".join(lines) + "\n")
        # The plumbing guards test pointers that are always freshly
        # allocated in this closed world — exactly the incidental
        # over-protective NULL tests the paper found 1127 of in Linux.
        # Guards on possibly-NULL results (callee has an error path) are
        # genuinely necessary and recorded as no finding.
        if not is_root and has_caller:
            self.truth.append(GroundTruthBug("UNTest", name, "a"))
        if callees and not (callee_returns_null and callee_returns_null[0]):
            self.truth.append(GroundTruthBug("UNTest", name, "r0"))

    def _emit_recursion_gadget(self) -> None:
        """Mutually recursive walkers: exercises SCC collapsing."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void *rec_even_{k}(int *node, int d) {{
    int *nx;
    nx = node;
    if (d > 0) {{ nx = rec_odd_{k}(node, d - 1); }}
    return nx;
}}
void *rec_odd_{k}(int *node, int d) {{
    int *ny;
    ny = node;
    if (d > 1) {{ ny = rec_even_{k}(node, d - 2); }}
    return ny;
}}
void rec_host_{k}(void) {{
    int *seed;
    int *out;
    seed = malloc(8);
    out = rec_even_{k}(seed, 4);
    if (out) {{ *out = 1; }}
}}
""",
        )
        # `out` walks back to the fresh `seed` allocation: never NULL.
        self.truth.append(GroundTruthBug("UNTest", f"rec_host_{k}", "out"))

    # ------------------------------------------------------------------
    # NULL gadgets (Null + UNTest checkers)
    # ------------------------------------------------------------------
    def _emit_null_deep(self) -> None:
        """NULL born deep, propagated through a passthrough chain, deref'd.

        The baseline Null checker only inspects functions that directly
        return an assigned NULL — the intermediate hops hide this one
        (false negative); the interprocedural dataflow analysis walks
        the chain (Graspan true positive).
        """
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        hops = self.spec.null_deep_chain
        parts = [
            f"""void *nd_src_{k}(int n) {{
    int *p;
    p = NULL;
    if (n > 2) {{ p = malloc(8); }}
    return p;
}}
"""
        ]
        prev = f"nd_src_{k}"
        for h in range(hops):
            parts.append(
                f"""void *nd_mid_{k}_{h}(int n) {{
    int *x;
    x = {prev}(n);
    return x;
}}
"""
            )
            prev = f"nd_mid_{k}_{h}"
        victim_var = f"v{k}"
        parts.append(
            f"""void nd_victim_{k}(void) {{
    int *{victim_var};
    {victim_var} = {prev}(1);
    *{victim_var} = 7;
}}
"""
        )
        self.sources.add(module, "".join(parts))
        self.truth.append(GroundTruthBug("Null", f"nd_victim_{k}", victim_var))

    def _emit_null_flow_decoy(self) -> None:
        """NULL overwritten before use: flow-insensitive FP for GR."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void nfd_victim_{k}(void) {{
    int *d{k};
    d{k} = NULL;
    d{k} = malloc(8);
    *d{k} = 3;
}}
""",
        )
        # no ground-truth entry: any report here is a false positive

    def _emit_null_shallow_decoy(self) -> None:
        """A 'returns NULL' function whose NULL is dead: BL FP generator."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void *nsd_src_{k}(void) {{
    int *p;
    p = NULL;
    p = malloc(8);
    return p;
}}
void nsd_victim_{k}(void) {{
    int *w{k};
    w{k} = nsd_src_{k}();
    *w{k} = 2;
}}
""",
        )
        # no ground truth: the returned pointer is never actually NULL

    def _emit_null_safe(self) -> None:
        """Deep NULL but properly guarded: nobody should report."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void *ns_src_{k}(int n) {{
    int *p;
    p = NULL;
    if (n) {{ p = malloc(8); }}
    return p;
}}
void ns_victim_{k}(void) {{
    int *s{k};
    s{k} = ns_src_{k}(0);
    if (s{k}) {{ *s{k} = 1; }}
}}
""",
        )

    def _emit_untest(self, positive: bool) -> None:
        """A NULL test on a pointer; unnecessary when the value is an
        unconditional allocation (possibly through a wrapper)."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        if positive:
            wrapped = self.rng.random() < 0.5
            if wrapped:
                src = f"""void *ut_alloc_{k}(void) {{
    int *fresh;
    fresh = malloc(16);
    return fresh;
}}
void ut_host_{k}(void) {{
    int *u{k};
    u{k} = ut_alloc_{k}();
    if (u{k}) {{ *u{k} = 1; }}
}}
"""
            else:
                src = f"""void ut_host_{k}(void) {{
    int *u{k};
    u{k} = malloc(16);
    if (u{k}) {{ *u{k} = 1; }}
}}
"""
            self.sources.add(module, src)
            self.truth.append(GroundTruthBug("UNTest", f"ut_host_{k}", f"u{k}"))
        else:
            # the pointer genuinely may be NULL: the test is necessary
            self.sources.add(
                module,
                f"""void *utn_src_{k}(int n) {{
    int *p;
    p = NULL;
    if (n) {{ p = malloc(8); }}
    return p;
}}
void utn_host_{k}(void) {{
    int *t{k};
    t{k} = utn_src_{k}(0);
    if (t{k}) {{ *t{k} = 1; }}
}}
""",
            )

    # ------------------------------------------------------------------
    # Free gadgets
    # ------------------------------------------------------------------
    def _emit_free_alias(self) -> None:
        """Use-after-free through an alias: invisible to name matching."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void fa_host_{k}(void) {{
    int *orig;
    int *dup{k};
    orig = malloc(24);
    dup{k} = orig;
    free(orig);
    *dup{k} = 1;
}}
""",
        )
        self.truth.append(GroundTruthBug("Free", f"fa_host_{k}", f"dup{k}"))

    def _emit_free_decoy(self) -> None:
        """Frees on mutually exclusive branches: name-based double-free FP."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void fd_host_{k}(int c) {{
    int *fd{k};
    fd{k} = malloc(8);
    if (c) {{ free(fd{k}); }}
    if (c < 1) {{ free(fd{k}); }}
}}
""",
        )

    # ------------------------------------------------------------------
    # Lock gadgets
    # ------------------------------------------------------------------
    def _emit_lock_alias(self) -> None:
        """Double acquisition hidden behind two names for one lock."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void la_inner_{k}(int *m1, int *m2{k}) {{
    lock(m1);
    lock(m2{k});
    unlock(m1);
    unlock(m2{k});
}}
void la_host_{k}(void) {{
    int *mutex;
    mutex = malloc(4);
    la_inner_{k}(mutex, mutex);
}}
""",
        )
        self.truth.append(GroundTruthBug("Lock", f"la_inner_{k}", f"m2{k}"))

    def _emit_lock_decoy(self) -> None:
        """Intentional lock handoff (held on return): name-based FP."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void ld_acquire_{k}(void) {{
    int *lk{k};
    lk{k} = malloc(4);
    lock(lk{k});
}}
""",
        )

    # ------------------------------------------------------------------
    # Block gadgets
    # ------------------------------------------------------------------
    def _emit_block_fp(self) -> None:
        """Blocking call reached through a function pointer."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void bf_sleeper_{k}(void) {{
    sleep();
}}
void bf_host_{k}(void) {{
    int *bm;
    void *bfp{k};
    bm = malloc(4);
    bfp{k} = bf_sleeper_{k};
    lock(bm);
    bfp{k}();
    unlock(bm);
}}
""",
        )
        self.truth.append(GroundTruthBug("Block", f"bf_host_{k}", f"bfp{k}"))

    def _emit_block_wrapper(self) -> None:
        """Blocking hidden one call level down."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void bw_wrap_{k}(void) {{
    sleep();
}}
void bw_host_{k}(void) {{
    int *wm;
    wm = malloc(4);
    lock(wm);
    bw_wrap_{k}();
    unlock(wm);
}}
""",
        )
        self.truth.append(GroundTruthBug("Block", f"bw_host_{k}", f"bw_wrap_{k}"))

    # ------------------------------------------------------------------
    # Range gadgets
    # ------------------------------------------------------------------
    def _emit_range_deep(self) -> None:
        """User data reaches an index through copies/arithmetic."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void rd_host_{k}(void) {{
    int rbuf[32];
    int rn;
    int rm{k};
    rn = get_user();
    rm{k} = rn + 2;
    rbuf[rm{k}] = 1;
}}
""",
        )
        self.truth.append(GroundTruthBug("Range", f"rd_host_{k}", f"rm{k}"))

    def _emit_range_decoy(self) -> None:
        """Bounds check done on a copy: checkers report the original (FP)."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void rdc_host_{k}(void) {{
    int dbuf[16];
    int dn{k};
    int dm;
    dn{k} = get_user();
    dm = dn{k};
    if (dm < 16) {{ dbuf[dn{k}] = 1; }}
}}
""",
        )

    # ------------------------------------------------------------------
    # Size gadgets
    # ------------------------------------------------------------------
    def _emit_size_direct(self) -> None:
        """Allocation size not a multiple of the pointer's element size."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void sd_host_{k}(void) {{
    long *sz{k};
    sz{k} = malloc(12);
    *sz{k} = 0;
}}
""",
        )
        self.truth.append(GroundTruthBug("Size", f"sd_host_{k}", f"sz{k}"))

    def _emit_size_flow(self) -> None:
        """Size fine at the allocation, wrong at a differently-typed alias."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void *sf_alloc_{k}(void) {{
    int *so;
    so = malloc(12);
    return so;
}}
void sf_host_{k}(void) {{
    long *sv{k};
    sv{k} = sf_alloc_{k}();
    *sv{k} = 0;
}}
""",
        )
        self.truth.append(GroundTruthBug("Size", f"sf_host_{k}", f"sv{k}"))

    def _emit_pnull_bug(self) -> None:
        """Deref before a NULL test, on a genuinely may-NULL pointer.

        The deref-then-test pattern is PNull's trigger; here the NULL can
        really arrive (through a two-hop producer so the baseline Null
        checker stays blind), making it a true positive that survives the
        Graspan filter.
        """
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void *pn_src_{k}(int n) {{
    int *p;
    p = NULL;
    if (n > 5) {{ p = malloc(8); }}
    return p;
}}
void *pn_mid_{k}(int n) {{
    int *m;
    m = pn_src_{k}(n);
    return m;
}}
void pn_host_{k}(void) {{
    int *pb{k};
    pb{k} = pn_mid_{k}(1);
    *pb{k} = 1;
    if (pb{k}) {{ *pb{k} = 2; }}
}}
""",
        )
        self.truth.append(GroundTruthBug("PNull", f"pn_host_{k}", f"pb{k}"))
        self.truth.append(GroundTruthBug("Null", f"pn_host_{k}", f"pb{k}"))

    def _emit_pnull_decoy(self) -> None:
        """Deref-then-test on a never-NULL pointer: the classic PNull FP.

        The baseline reports it; the Graspan-augmented version filters it
        out because no context makes the pointer NULL (the paper's
        'Positive' improvement for PNull).  The test itself is also an
        unnecessary NULL test, so UNTest truth is recorded.
        """
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void pnd_host_{k}(void) {{
    int *qd{k};
    qd{k} = malloc(8);
    *qd{k} = 1;
    if (qd{k}) {{ *qd{k} = 2; }}
}}
""",
        )
        self.truth.append(GroundTruthBug("UNTest", f"pnd_host_{k}", f"qd{k}"))

    # ------------------------------------------------------------------
    # Race gadgets (spawn-based lockset races)
    # ------------------------------------------------------------------
    def _emit_race_unguarded(self) -> None:
        """Unguarded shared counter: two spawned threads hit one global
        cell with no locks.  Both the name-keyed baseline and the
        Graspan-augmented detector should report it."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""int *ru_cell_{k};
void ru_bump_{k}(void) {{
    int t;
    t = *ru_cell_{k};
    *ru_cell_{k} = t + 1;
}}
void ru_reset_{k}(void) {{
    *ru_cell_{k} = 0;
}}
void ru_host_{k}(void) {{
    ru_cell_{k} = malloc(4);
    spawn ru_bump_{k}();
    spawn ru_reset_{k}();
}}
""",
        )
        self.truth.append(GroundTruthBug("Race", f"ru_bump_{k}", f"ru_cell_{k}"))
        self.truth.append(GroundTruthBug("Race", f"ru_reset_{k}", f"ru_cell_{k}"))

    def _emit_race_heap(self) -> None:
        """Heap cell handed to the thread through a parameter: no global
        name is involved, so the name-keyed baseline is blind (false
        negative); the object-keyed detector sees the allocation escape
        across the spawn boundary."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void rh_worker_{k}(int *cell{k}) {{
    *cell{k} = 1;
}}
void rh_host_{k}(void) {{
    int *buf{k};
    buf{k} = malloc(4);
    spawn rh_worker_{k}(buf{k});
    *buf{k} = 2;
}}
""",
        )
        self.truth.append(GroundTruthBug("Race", f"rh_worker_{k}", f"cell{k}"))
        self.truth.append(GroundTruthBug("Race", f"rh_host_{k}", f"buf{k}"))

    def _emit_race_guarded_decoy(self) -> None:
        """False-alarm bait: both sides lock the *same* lock object under
        different variable names.  The name-keyed baseline sees disjoint
        locksets and cries race (two FPs); alias-resolved lock identity
        proves mutual exclusion, so no ground truth is recorded."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""int *rg_cell_{k};
int *rg_lock_{k};
void rg_worker_{k}(void) {{
    int *lkalias{k};
    lkalias{k} = rg_lock_{k};
    lock(lkalias{k});
    *rg_cell_{k} = 1;
    unlock(lkalias{k});
}}
void rg_host_{k}(void) {{
    rg_cell_{k} = malloc(4);
    rg_lock_{k} = malloc(4);
    spawn rg_worker_{k}();
    lock(rg_lock_{k});
    *rg_cell_{k} = 2;
    unlock(rg_lock_{k});
}}
""",
        )

    # ------------------------------------------------------------------
    # Taint/injection gadgets (input() sources, query()/exec() sinks)
    # ------------------------------------------------------------------
    def _emit_taint_direct(self) -> None:
        """Source and sink in one function: ``tv = input(); query(tv)``.
        Both the name-keyed baseline and the grammar-driven detector
        report it."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void td_host_{k}(void) {{
    int tv{k};
    tv{k} = input();
    query(tv{k});
}}
""",
        )
        self.truth.append(GroundTruthBug("Taint", f"td_host_{k}", f"tv{k}"))

    def _emit_taint_flow(self) -> None:
        """Interprocedural flow: the source value crosses a chain of
        passthrough helpers before reaching the sink.  The baseline
        kills taint at every call boundary (false negative); the taint
        closure threads it through parameter/return A-edges."""
        k = self._next_id()
        hops = max(1, self.spec.taint_flow_chain)
        module = self.sources.pick_module(bias_drivers=True)
        chunks = [
            f"""int tf_src_{k}(void) {{
    int td;
    td = input();
    return td;
}}
"""
        ]
        for h in range(hops):
            chunks.append(
                f"""int tf_mid_{k}_{h}(int x{k}) {{
    int y{k};
    y{k} = x{k};
    return y{k};
}}
"""
            )
        calls = f"    ta = tf_src_{k}();\n"
        var = "ta"
        for h in range(hops):
            nxt = f"tb{h}" if h < hops - 1 else f"tq{k}"
            calls += f"    {nxt} = tf_mid_{k}_{h}({var});\n"
            var = nxt
        decls = "".join(
            f"    int tb{h};\n" for h in range(hops - 1)
        )
        chunks.append(
            f"""void tf_victim_{k}(void) {{
    int ta;
{decls}    int tq{k};
{calls}    query(tq{k});
}}
"""
        )
        self.sources.add(module, "".join(chunks))
        self.truth.append(GroundTruthBug("Taint", f"tf_victim_{k}", f"tq{k}"))

    def _emit_taint_heap(self) -> None:
        """Taint laundered through the heap: stored through one pointer,
        loaded back through an alias.  Name-keyed tracking is blind; the
        alias-aware taint closure follows the store/load pair."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void th_host_{k}(void) {{
    int *cell{k};
    int *thalias{k};
    int tin;
    int tout{k};
    cell{k} = malloc(8);
    thalias{k} = cell{k};
    tin = input();
    *cell{k} = tin;
    tout{k} = *thalias{k};
    exec(tout{k});
}}
""",
        )
        self.truth.append(GroundTruthBug("Taint", f"th_host_{k}", f"tout{k}"))

    def _emit_taint_sanitizer_decoy(self) -> None:
        """False-alarm bait: the tainted value passes through
        ``sanitize()`` before the sink.  The baseline treats sanitize
        like a copy and cries injection (FP); the grammar encodes
        sanitization as an edge break, so no TT path reaches the sink
        and no ground truth is recorded."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void tsd_host_{k}(void) {{
    int raw;
    int cl{k};
    raw = input();
    cl{k} = sanitize(raw);
    exec(cl{k});
}}
int tsd_src_{k}(void) {{
    int z;
    z = input();
    return z;
}}
void tsd_deep_{k}(void) {{
    int dv;
    int ds{k};
    dv = tsd_src_{k}();
    ds{k} = sanitize(dv);
    query(ds{k});
}}
""",
        )
        self.decoys.extend([f"tsd_host_{k}", f"tsd_deep_{k}"])

    # ------------------------------------------------------------------
    # Async-misuse gadgets (blocking calls on the event loop)
    # ------------------------------------------------------------------
    def _emit_async_direct(self) -> None:
        """Direct ``sleep()`` inside an async body: both modes report."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""async void ad_host_{k}(void) {{
    sleep();
}}
""",
        )
        self.truth.append(GroundTruthBug("Async", f"ad_host_{k}", "sleep"))

    def _emit_async_deep(self) -> None:
        """Blocking hidden one call deep in an async function that also
        awaits a genuine coroutine.  The baseline only sees direct
        sleeps (false negative); the call-graph blocking closure plus
        the async context marking catch the wrapper."""
        k = self._next_id()
        module = self.sources.pick_module(bias_drivers=True)
        self.sources.add(
            module,
            f"""void aw_block_{k}(void) {{
    sleep();
}}
async int aw_fetch_{k}(void) {{
    int r{k};
    r{k} = 1;
    return r{k};
}}
async void aw_deep_{k}(void) {{
    int q{k};
    q{k} = await aw_fetch_{k}();
    aw_block_{k}();
}}
""",
        )
        self.truth.append(GroundTruthBug("Async", f"aw_deep_{k}", f"aw_block_{k}"))

    def _emit_async_safe_decoy(self) -> None:
        """False-alarm bait: the async function spawns the sleepy worker
        onto its own thread.  ``spawn`` severs the async extent, so a
        correct detector stays quiet and no ground truth is recorded."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void as_sleepy_{k}(void) {{
    sleep();
}}
void as_helper_{k}(void) {{
    int h{k};
    h{k} = 3;
}}
async void as_host_{k}(void) {{
    as_helper_{k}();
    spawn as_sleepy_{k}();
}}
""",
        )
        self.decoys.append(f"as_host_{k}")

    def _emit_size_decoy(self) -> None:
        """Odd size on purpose (header + payload): a known FP pattern."""
        k = self._next_id()
        module = self.sources.pick_module()
        self.sources.add(
            module,
            f"""void sdc_host_{k}(void) {{
    int *hdr{k};
    hdr{k} = malloc(10);
    *hdr{k} = 0;
}}
""",
        )


def generate(spec: WorkloadSpec) -> Workload:
    """Generate the workload for ``spec`` (deterministic in the seed)."""
    return SyntheticProgramBuilder(spec).build()
