"""The three evaluation workloads, scaled from the paper's Table 2.

The paper analyzes Linux 4.4.0-rc5 (16 MLoC, 317M inlines), PostgreSQL
8.3.9 (700 KLoC, ~291K inlines), and Apache httpd 2.2.18 (300 KLoC,
~58K inlines).  Our generated stand-ins keep the *ordering and ratios*
— Linux an order of magnitude more inlines than PostgreSQL, PostgreSQL a
few times httpd — at roughly 10^3-10^4x smaller absolute scale so a
pure-Python engine finishes in benchmark time (see DESIGN.md §1).

``scale`` multiplies the codebase size; benchmarks use the defaults,
tests use smaller scales.
"""

from __future__ import annotations

from repro.workloads.synthetic import (
    LINUX_MODULE_WEIGHTS,
    Workload,
    WorkloadSpec,
    generate,
)

#: Paper reference values (Table 2) for reporting alongside ours.
PAPER_TABLE2 = {
    "linux": {"version": "4.4.0-rc5", "loc": 16_000_000, "inlines": 317_000_000},
    "postgresql": {"version": "8.3.9", "loc": 700_000, "inlines": 290_820},
    "httpd": {"version": "2.2.18", "loc": 300_000, "inlines": 58_269},
}


def linux_like(scale: float = 1.0, seed: int = 11) -> Workload:
    """A kernel-shaped workload: deep call DAG, heavy fanout, many modules."""
    spec = WorkloadSpec(
        name="linux-like",
        seed=seed,
        num_roots=24,
        layers=6,
        fanout=3,
        layer_width=26,
        pointer_chain=3,
        null_deep=10,
        null_decoys=3,
        null_shallow_decoys=3,
        null_safe=3,
        untest=40,
        untest_negative=6,
        free_alias=4,
        free_decoys=3,
        lock_alias=3,
        lock_decoys=3,
        block_fp=3,
        block_wrapper=2,
        range_deep=4,
        range_decoys=1,
        size_direct=3,
        size_flow=3,
        size_decoys=2,
        race_unguarded=3,
        race_heap=2,
        race_guarded_decoys=2,
        taint_direct=3,
        taint_flow=3,
        taint_flow_chain=3,
        taint_heap=2,
        taint_sanitizer_decoys=2,
        async_direct=2,
        async_deep=2,
        async_safe_decoys=2,
        recursion_gadgets=2,
        module_weights=dict(LINUX_MODULE_WEIGHTS),
    ).scaled(scale)
    spec.name = "linux-like"
    return generate(spec)


def postgresql_like(scale: float = 1.0, seed: int = 22) -> Workload:
    """A database-server-shaped workload: moderate depth and fanout."""
    spec = WorkloadSpec(
        name="postgresql-like",
        seed=seed,
        num_roots=14,
        layers=5,
        fanout=2,
        layer_width=16,
        pointer_chain=3,
        null_deep=4,
        null_decoys=1,
        null_shallow_decoys=1,
        null_safe=2,
        untest=12,
        untest_negative=3,
        free_alias=2,
        free_decoys=1,
        lock_alias=1,
        lock_decoys=1,
        block_fp=1,
        block_wrapper=1,
        range_deep=2,
        range_decoys=1,
        size_direct=1,
        size_flow=1,
        size_decoys=1,
        race_unguarded=2,
        race_heap=1,
        race_guarded_decoys=1,
        taint_direct=2,
        taint_flow=2,
        taint_flow_chain=2,
        taint_heap=1,
        taint_sanitizer_decoys=1,
        async_direct=1,
        async_deep=1,
        async_safe_decoys=1,
        recursion_gadgets=1,
        module_weights={
            "backend": 0.45,
            "storage": 0.2,
            "optimizer": 0.15,
            "utils": 0.12,
            "interfaces": 0.08,
        },
    ).scaled(scale)
    spec.name = "postgresql-like"
    return generate(spec)


def httpd_like(scale: float = 1.0, seed: int = 33) -> Workload:
    """A web-server-shaped workload: shallow call structure."""
    spec = WorkloadSpec(
        name="httpd-like",
        seed=seed,
        num_roots=10,
        layers=4,
        fanout=2,
        layer_width=10,
        pointer_chain=2,
        null_deep=3,
        null_decoys=1,
        null_shallow_decoys=1,
        null_safe=1,
        untest=6,
        untest_negative=2,
        free_alias=1,
        free_decoys=1,
        lock_alias=1,
        lock_decoys=1,
        block_fp=1,
        block_wrapper=1,
        range_deep=1,
        range_decoys=1,
        size_direct=1,
        size_flow=1,
        size_decoys=1,
        race_unguarded=1,
        race_heap=1,
        race_guarded_decoys=1,
        taint_direct=1,
        taint_flow=1,
        taint_flow_chain=2,
        taint_heap=1,
        taint_sanitizer_decoys=1,
        async_direct=1,
        async_deep=1,
        async_safe_decoys=1,
        recursion_gadgets=1,
        module_weights={
            "server": 0.4,
            "modules": 0.35,
            "aprlib": 0.15,
            "support": 0.1,
        },
    ).scaled(scale)
    spec.name = "httpd-like"
    return generate(spec)


ALL_WORKLOADS = {
    "linux": linux_like,
    "postgresql": postgresql_like,
    "httpd": httpd_like,
}


def workload_by_name(name: str, scale: float = 1.0) -> Workload:
    try:
        factory = ALL_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(ALL_WORKLOADS)}"
        ) from None
    return factory(scale=scale)
