"""A semi-naive Datalog engine: the SociaLite stand-in of §5.4.

The paper compares Graspan against SociaLite, an in-memory shared-memory
Datalog engine: "SociaLite programs were easy to write — it took us less
than 50 LoC to implement either analysis.  However, SociaLite clearly
could not scale to graphs that cannot fit into memory."

This module reproduces both halves of that comparison:

* **ease** — :func:`grammar_to_rules` turns any Graspan grammar into a
  handful of Datalog rules (one per production), and the engine
  evaluates them with standard semi-naive iteration;
* **the memory wall** — every stored tuple is charged to a
  :class:`MemoryBudget`; graphs whose closure exceeds it abort with an
  OOM status instead of an answer, as SociaLite did on Linux and
  PostgreSQL in Table 6.

The engine is deliberately generic (hash-join over binary relations, no
graph-specific layout) — that genericity is precisely the paper's
argument for a purpose-built system.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.graph import MemGraph
from repro.grammar.grammar import FrozenGrammar
from repro.util.memory import MemoryBudget, MemoryBudgetExceeded

#: Bytes charged per stored Datalog tuple (pair + two hash indexes).
BYTES_PER_TUPLE = 64


@dataclass(frozen=True)
class Rule:
    """``head(x, z) :- body1(x, y), body2(y, z)`` — or a single-atom body.

    All relations are binary and all rules are linear joins on the
    middle variable, which is exactly the shape grammar productions
    binarized to two RHS terms produce.
    """

    head: str
    body1: str
    body2: Optional[str] = None

    def __str__(self) -> str:
        if self.body2 is None:
            return f"{self.head}(x, y) :- {self.body1}(x, y)."
        return f"{self.head}(x, z) :- {self.body1}(x, y), {self.body2}(y, z)."


def grammar_to_rules(grammar: FrozenGrammar) -> List[Rule]:
    """One Datalog rule per grammar production (the <50 LoC claim)."""
    rules = []
    for p in grammar.productions:
        rules.append(
            Rule(
                head=grammar.label_name(p.lhs),
                body1=grammar.label_name(p.rhs1),
                body2=None if p.rhs2 is None else grammar.label_name(p.rhs2),
            )
        )
    return rules


@dataclass
class DatalogResult:
    status: str  # "ok" | "oom" | "timeout"
    seconds: float
    tuples: int
    relations: Optional[Dict[str, Set[Tuple[int, int]]]]
    peak_bytes: int


class DatalogEngine:
    """Semi-naive bottom-up evaluation over binary relations."""

    def __init__(
        self,
        memory_budget_bytes: int = 1 << 30,
        time_budget_seconds: float = 3600.0,
    ) -> None:
        self.memory_budget_bytes = memory_budget_bytes
        self.time_budget_seconds = time_budget_seconds
        self.rules: List[Rule] = []
        self._facts: List[Tuple[str, int, int]] = []

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def add_fact(self, relation: str, x: int, y: int) -> None:
        self._facts.append((relation, x, y))

    def load_graph(self, graph: MemGraph) -> None:
        names = list(graph.label_names)
        for src, dst, label in graph.edges():
            self.add_fact(names[label], src, dst)

    # ------------------------------------------------------------------
    def evaluate(self) -> DatalogResult:
        budget = MemoryBudget(self.memory_budget_bytes)
        started = time.perf_counter()
        deadline = started + self.time_budget_seconds

        full: Dict[str, Set[Tuple[int, int]]] = {}
        # by-first-column index per relation, for the y-join
        by_x: Dict[str, Dict[int, Set[int]]] = {}
        delta: Dict[str, Set[Tuple[int, int]]] = {}

        def insert(rel: str, pair: Tuple[int, int], into_delta: Dict) -> None:
            existing = full.setdefault(rel, set())
            if pair in existing:
                return
            budget.charge(BYTES_PER_TUPLE)
            existing.add(pair)
            by_x.setdefault(rel, {}).setdefault(pair[0], set()).add(pair[1])
            into_delta.setdefault(rel, set()).add(pair)

        try:
            for rel, x, y in self._facts:
                insert(rel, (x, y), delta)

            while delta:
                if time.perf_counter() > deadline:
                    return DatalogResult(
                        status="timeout",
                        seconds=time.perf_counter() - started,
                        tuples=sum(len(s) for s in full.values()),
                        relations=None,
                        peak_bytes=budget.high_water,
                    )
                new_delta: Dict[str, Set[Tuple[int, int]]] = {}
                for rule in self.rules:
                    if rule.body2 is None:
                        for pair in delta.get(rule.body1, ()):
                            insert(rule.head, pair, new_delta)
                        continue
                    # semi-naive: delta1 x full2  +  full1 x delta2
                    # (snapshot the iterated sets: inserts into the head
                    # relation may also extend a body relation)
                    for x, y in list(delta.get(rule.body1, ())):
                        for z in list(by_x.get(rule.body2, {}).get(y, ())):
                            insert(rule.head, (x, z), new_delta)
                    delta2 = delta.get(rule.body2, ())
                    if delta2:
                        # index delta2 by first column on the fly
                        d2_by_x: Dict[int, List[int]] = {}
                        for y, z in delta2:
                            d2_by_x.setdefault(y, []).append(z)
                        for x, y in list(full.get(rule.body1, ())):
                            for z in d2_by_x.get(y, ()):
                                insert(rule.head, (x, z), new_delta)
                delta = new_delta
        except MemoryBudgetExceeded:
            return DatalogResult(
                status="oom",
                seconds=time.perf_counter() - started,
                tuples=sum(len(s) for s in full.values()),
                relations=None,
                peak_bytes=budget.high_water,
            )

        return DatalogResult(
            status="ok",
            seconds=time.perf_counter() - started,
            tuples=sum(len(s) for s in full.values()),
            relations=full,
            peak_bytes=budget.high_water,
        )


def run_datalog(
    graph: MemGraph,
    grammar: FrozenGrammar,
    memory_budget_bytes: int = 1 << 30,
    time_budget_seconds: float = 3600.0,
) -> DatalogResult:
    """Translate the grammar to rules, load the graph, evaluate."""
    engine = DatalogEngine(memory_budget_bytes, time_budget_seconds)
    for rule in grammar_to_rules(grammar):
        engine.add_rule(rule)
    engine.load_graph(graph)
    return engine.evaluate()
