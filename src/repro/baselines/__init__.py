"""The systems the paper compares against, rebuilt at model scale (§5.3-5.4)."""

from repro.baselines.oda import ODAResult, run_oda
from repro.baselines.datalog import (
    DatalogEngine,
    DatalogResult,
    Rule,
    grammar_to_rules,
    run_datalog,
)
from repro.baselines.vertexcentric import VertexCentricResult, run_vertexcentric

__all__ = [
    "ODAResult",
    "run_oda",
    "DatalogEngine",
    "DatalogResult",
    "Rule",
    "grammar_to_rules",
    "run_datalog",
    "VertexCentricResult",
    "run_vertexcentric",
]
