"""On-demand pointer analysis (ODA): the paper's traditional baseline.

Reimplements the comparison target of §5.3 — "the context-sensitive
version of Zheng and Rugina's C pointer analysis ... a worklist-based
(sequential) algorithm to compute transitive closures".  Exactly the
style the paper criticizes: one fact at a time, no batching, no sorted
merges, no parallelism, everything resident in memory.

Every derived fact is charged against a :class:`MemoryBudget`; a wall
clock enforces a time budget.  This reproduces Table 6's ODA column —
identical answers on graphs that fit, OOM/timeout on those that don't —
without actually taking down the machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.graph.graph import MemGraph
from repro.grammar.grammar import FrozenGrammar
from repro.util.memory import MemoryBudget, MemoryBudgetExceeded

#: Bytes charged per derived reachability fact.  Worklist solvers carry a
#: (src, dst, label) record plus hash-set overhead per fact.
BYTES_PER_FACT = 48


@dataclass
class ODAResult:
    """Outcome of one ODA run (a Table 6 cell)."""

    status: str  # "ok" | "oom" | "timeout"
    seconds: float
    facts: int  # derived facts at completion (or at failure)
    edges: Optional[Set[Tuple[int, int, int]]]  # closure when status == "ok"
    peak_bytes: int


def run_oda(
    graph: MemGraph,
    grammar: FrozenGrammar,
    memory_budget_bytes: int = 1 << 30,
    time_budget_seconds: float = 3600.0,
) -> ODAResult:
    """Run the sequential worklist solver under memory and time budgets."""
    budget = MemoryBudget(memory_budget_bytes)
    started = time.perf_counter()
    deadline = started + time_budget_seconds

    closed: Set[Tuple[int, int, int]] = set()
    worklist = []
    out: Dict[int, Set[Tuple[int, int]]] = {}
    incoming: Dict[int, Set[Tuple[int, int]]] = {}

    def elapsed() -> float:
        return time.perf_counter() - started

    def add(src: int, dst: int, label: int) -> None:
        for derived in grammar.unary_closure[label]:
            fact = (src, dst, derived)
            if fact in closed:
                continue
            budget.charge(BYTES_PER_FACT)
            closed.add(fact)
            out.setdefault(src, set()).add((dst, derived))
            incoming.setdefault(dst, set()).add((src, derived))
            worklist.append(fact)

    try:
        for src, dst, label in graph.edges():
            add(src, dst, label)
        steps = 0
        while worklist:
            steps += 1
            if steps % 4096 == 0 and time.perf_counter() > deadline:
                return ODAResult(
                    status="timeout",
                    seconds=elapsed(),
                    facts=len(closed),
                    edges=None,
                    peak_bytes=budget.high_water,
                )
            src, dst, label = worklist.pop()
            for x, l2 in list(out.get(dst, ())):
                for lhs in grammar.produced_by_pair(label, l2):
                    add(src, x, lhs)
            for w, l1 in list(incoming.get(src, ())):
                for lhs in grammar.produced_by_pair(l1, label):
                    add(w, dst, lhs)
    except MemoryBudgetExceeded:
        return ODAResult(
            status="oom",
            seconds=elapsed(),
            facts=len(closed),
            edges=None,
            peak_bytes=budget.high_water,
        )

    return ODAResult(
        status="ok",
        seconds=elapsed(),
        facts=len(closed),
        edges=closed,
        peak_bytes=budget.high_water,
    )
