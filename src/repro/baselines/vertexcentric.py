"""A GraphChi-like vertex-centric system — the §5.4 divergence study.

GraphChi is the only prior disk-based system supporting dynamic edge
addition, via an ``add_edge`` buffer with a size threshold.  The paper
reports two fatal mismatches with the DTC workload: (1) *no duplicate
checking* — "its computation would never terminate on our workloads" —
and (2) a naive buffer-only check does not help, because duplicates
already flushed to shards are invisible; GraphChi crashed after adding
~65M edges in 133 seconds.

This module rebuilds that architecture at model scale: target-sharded
vertex-centric iterations, an add-edge buffer with a flush threshold,
and configurable duplicate checking (``none`` — faithful GraphChi,
``buffer`` — the paper's naive patch, ``full`` — what would actually be
needed and what Graspan does during its merges).  Runs stop with status
``"diverged"`` when total edges blow past a budget, reproducing the
paper's non-termination without the wait.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.graph.graph import MemGraph
from repro.grammar.grammar import FrozenGrammar


@dataclass
class VertexCentricResult:
    status: str  # "ok" | "diverged" | "timeout"
    seconds: float
    edges_added: int
    total_edges: int
    iterations: int
    buffer_stalls: int  # times the add_edge buffer hit its threshold


def run_vertexcentric(
    graph: MemGraph,
    grammar: FrozenGrammar,
    dedup: str = "none",
    buffer_limit: int = 100_000,
    edge_budget: int = 2_000_000,
    time_budget_seconds: float = 600.0,
    max_iterations: int = 10_000,
) -> VertexCentricResult:
    """Drive the vertex-centric model on a DTC workload.

    ``dedup``:

    * ``"none"``   — faithful GraphChi: duplicates accumulate, the run
      diverges on any workload that re-derives an edge (i.e. all of ours);
    * ``"buffer"`` — check only the unflushed buffer (the paper's naive
      patch): still diverges once duplicates span flushes;
    * ``"full"``   — global duplicate check: terminates with the correct
      closure, at the cost GraphChi's design cannot pay (a re-design).
    """
    if dedup not in ("none", "buffer", "full"):
        raise ValueError(f"unknown dedup mode {dedup!r}")
    started = time.perf_counter()
    deadline = started + time_budget_seconds

    # Shards keyed by target vertex (GraphChi shards on in-edges).
    in_edges: Dict[int, List[Tuple[int, int]]] = {}  # dst -> [(src, label)]
    out_edges: Dict[int, List[Tuple[int, int]]] = {}  # src -> [(dst, label)]
    known: Set[Tuple[int, int, int]] = set()  # only used when dedup == "full"

    total = 0

    def commit(src: int, dst: int, label: int) -> None:
        nonlocal total
        in_edges.setdefault(dst, []).append((src, label))
        out_edges.setdefault(src, []).append((dst, label))
        total += 1

    for src, dst, label in graph.edges():
        for derived in grammar.unary_closure[label]:
            if dedup == "full":
                if (src, dst, derived) in known:
                    continue
                known.add((src, dst, derived))
            commit(src, dst, derived)

    buffer: List[Tuple[int, int, int]] = []
    buffer_set: Set[Tuple[int, int, int]] = set()
    edges_added = 0
    stalls = 0
    iterations = 0

    def add_edge(src: int, dst: int, label: int) -> bool:
        """GraphChi's add_edge: buffered, threshold-limited."""
        nonlocal stalls
        edge = (src, dst, label)
        if dedup == "buffer" and edge in buffer_set:
            return True
        if dedup == "full" and edge in known:
            return True
        if len(buffer) >= buffer_limit:
            stalls += 1
            return False  # the paper: "the function always returns false"
        buffer.append(edge)
        if dedup == "buffer":
            buffer_set.add(edge)
        if dedup == "full":
            known.add(edge)
        return True

    while iterations < max_iterations:
        iterations += 1
        if time.perf_counter() > deadline:
            return VertexCentricResult(
                "timeout", time.perf_counter() - started, edges_added, total,
                iterations, stalls,
            )
        produced_any = False
        # Vertex update: each vertex matches its in-edges against its
        # out-edges (both visible at the vertex, as in GraphChi's model).
        for v in list(in_edges.keys()):
            outs = out_edges.get(v)
            if not outs:
                continue
            for src, l1 in in_edges[v]:
                for dst, l2 in outs:
                    slot = grammar.binary_index[l1, l2]
                    if slot < 0:
                        continue
                    for lhs in grammar.binary_results[slot]:
                        if add_edge(src, dst, int(lhs)):
                            produced_any = True
        # Commit point: flush the buffer into the shards.
        if buffer:
            for src, dst, label in buffer:
                commit(src, dst, label)
                edges_added += 1
            buffer.clear()
            buffer_set.clear()
        if total > edge_budget:
            return VertexCentricResult(
                "diverged", time.perf_counter() - started, edges_added, total,
                iterations, stalls,
            )
        if not produced_any and not buffer:
            break

    return VertexCentricResult(
        "ok", time.perf_counter() - started, edges_added, total, iterations, stalls
    )
