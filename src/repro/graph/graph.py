"""In-memory labeled directed multigraphs (the Graspan input graph).

:class:`MemGraph` is the exchange format between the frontend (which
generates program graphs), preprocessing (which shards them into
partitions), the engine (for in-memory computation), and the baselines.
It stores edges columnar — ``src`` array plus packed ``(target, label)``
key array — sorted by ``(src, key)`` with duplicates removed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import packed


class MemGraph:
    """An immutable, sorted, deduplicated labeled edge list.

    Construct with :meth:`from_edges` (triples) or :meth:`from_arrays`
    (columnar).  Vertex ids are dense non-negative integers; the number of
    vertices is ``max id + 1`` unless given explicitly (isolated vertices
    are legal and matter for partitioning).
    """

    def __init__(
        self,
        src: np.ndarray,
        keys: np.ndarray,
        num_vertices: int,
        label_names: Sequence[str],
    ) -> None:
        if len(src) != len(keys):
            raise ValueError("src and keys must be parallel arrays")
        self.src = src
        self.keys = keys
        self.num_vertices = num_vertices
        self.label_names = tuple(label_names)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int, int]],
        num_vertices: Optional[int] = None,
        label_names: Sequence[str] = (),
    ) -> "MemGraph":
        """Build from ``(src, dst, label)`` triples (any order, dups ok)."""
        triples = list(edges)
        if triples:
            src = np.asarray([t[0] for t in triples], dtype=np.int64)
            dst = np.asarray([t[1] for t in triples], dtype=np.int64)
            lab = np.asarray([t[2] for t in triples], dtype=np.int64)
        else:
            src = dst = lab = packed.EMPTY
        return cls.from_arrays(src, dst, lab, num_vertices, label_names)

    @classmethod
    def from_arrays(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        labels: np.ndarray,
        num_vertices: Optional[int] = None,
        label_names: Sequence[str] = (),
    ) -> "MemGraph":
        src = np.asarray(src, dtype=np.int64)
        keys = packed.pack(dst, labels)
        if len(src):
            order = np.lexsort((keys, src))
            src, keys = src[order], keys[order]
            # drop duplicate (src, key) rows
            dup = np.zeros(len(src), dtype=bool)
            dup[1:] = (src[1:] == src[:-1]) & (keys[1:] == keys[:-1])
            src, keys = src[~dup], keys[~dup]
        if num_vertices is None:
            highest = -1
            if len(src):
                highest = max(int(src.max()), int(packed.targets_of(keys).max()))
            num_vertices = highest + 1
        return cls(src, keys, num_vertices, label_names)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.src)

    def out_keys(self, v: int) -> np.ndarray:
        """Sorted packed out-edges of vertex ``v``.

        Located by binary search on the sorted ``src`` column, so memory
        stays O(edges) even for graphs with huge sparse vertex ids.
        """
        lo = np.searchsorted(self.src, v, side="left")
        hi = np.searchsorted(self.src, v, side="right")
        return self.keys[lo:hi]

    def out_degree(self, v: int) -> int:
        lo = np.searchsorted(self.src, v, side="left")
        hi = np.searchsorted(self.src, v, side="right")
        return int(hi - lo)

    def out_degrees(self) -> np.ndarray:
        """Per-vertex out-degrees; allocates O(num_vertices)."""
        if len(self.src) == 0:
            return np.zeros(self.num_vertices, dtype=np.int64)
        return np.bincount(self.src, minlength=self.num_vertices).astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        degrees = np.zeros(self.num_vertices, dtype=np.int64)
        if len(self.keys):
            tgt, counts = np.unique(packed.targets_of(self.keys), return_counts=True)
            degrees[tgt] = counts
        return degrees

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(src, dst, label)`` triples in sorted order."""
        dst = packed.targets_of(self.keys)
        lab = packed.labels_of(self.keys)
        for i in range(len(self.src)):
            yield int(self.src[i]), int(dst[i]), int(lab[i])

    def edges_with_label(self, label: int) -> Iterator[Tuple[int, int]]:
        """Iterate ``(src, dst)`` for edges carrying ``label`` (§4.4 API)."""
        mask = packed.labels_of(self.keys) == label
        dst = packed.targets_of(self.keys[mask])
        for s, d in zip(self.src[mask], dst):
            yield int(s), int(d)

    def count_by_label(self) -> Dict[int, int]:
        labels, counts = np.unique(packed.labels_of(self.keys), return_counts=True)
        return {int(l): int(c) for l, c in zip(labels, counts)}

    def has_edge(self, src: int, dst: int, label: int) -> bool:
        keys = self.out_keys(src)
        key = packed.pack_one(dst, label)
        i = np.searchsorted(keys, key)
        return i < len(keys) and keys[i] == key

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def with_edges(self, extra: Iterable[Tuple[int, int, int]]) -> "MemGraph":
        """A new graph with additional triples (used by graph generators)."""
        extra = list(extra)
        if not extra:
            return self
        add_src = np.asarray([t[0] for t in extra], dtype=np.int64)
        add_dst = np.asarray([t[1] for t in extra], dtype=np.int64)
        add_lab = np.asarray([t[2] for t in extra], dtype=np.int64)
        src = np.concatenate([self.src, add_src])
        dst = np.concatenate([packed.targets_of(self.keys), add_dst])
        lab = np.concatenate([packed.labels_of(self.keys), add_lab])
        highest = -1
        if len(src):
            highest = max(int(src.max()), int(dst.max()))
        return MemGraph.from_arrays(
            src, dst, lab, max(self.num_vertices, highest + 1), self.label_names
        )

    def __repr__(self) -> str:
        return f"MemGraph({self.num_vertices} vertices, {self.num_edges} edges)"


def add_inverse_edges(
    edges: Iterable[Tuple[int, int, int]],
    inverse_label: Dict[int, int],
) -> List[Tuple[int, int, int]]:
    """Return ``edges`` plus the inverse ("bar") edge of each (§3).

    ``inverse_label`` maps a label id to its bar counterpart; labels
    missing from the map get no inverse (e.g. nonterminal labels).
    """
    out: List[Tuple[int, int, int]] = []
    for src, dst, label in edges:
        out.append((src, dst, label))
        bar = inverse_label.get(label)
        if bar is not None:
            out.append((dst, src, bar))
    return out
