"""Graph substrate: packed edge arrays, in-memory graphs, disk formats."""

from repro.graph.packed import (
    EMPTY,
    LABEL_BITS,
    LABEL_MASK,
    MAX_VERTEX_ID,
    pack,
    pack_one,
    labels_of,
    targets_of,
    unpack,
    merge_unique,
    heap_merge_unique,
    isin_sorted,
    setdiff_sorted,
    sort_unique,
    from_pairs,
    to_pairs,
)
from repro.graph.graph import MemGraph, add_inverse_edges
from repro.graph.io import read_binary, read_text, write_binary, write_text

__all__ = [
    "EMPTY",
    "LABEL_BITS",
    "LABEL_MASK",
    "MAX_VERTEX_ID",
    "pack",
    "pack_one",
    "labels_of",
    "targets_of",
    "unpack",
    "merge_unique",
    "heap_merge_unique",
    "isin_sorted",
    "setdiff_sorted",
    "sort_unique",
    "from_pairs",
    "to_pairs",
    "MemGraph",
    "add_inverse_edges",
    "read_binary",
    "read_text",
    "write_binary",
    "write_text",
]
