"""Packed edge representation: one edge = one ``int64``.

Graspan keeps each vertex's outgoing edges sorted to enable batch,
merge-based edge addition with built-in duplicate elimination (§4.2).  We
pack an outgoing edge ``(target, label)`` into a single int64 key::

    key = (target << LABEL_BITS) | label

Keys sort primarily by target vertex and secondarily by label — exactly
the order the paper stores edges in ("ordered on their target vertex
IDs").  All set operations below assume and preserve sorted order; they
are thin vectorized wrappers that the engine's inner loop is built from.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

#: Bits reserved for the edge label; must cover ``repro.grammar.MAX_LABELS``.
LABEL_BITS = 8
LABEL_MASK = (1 << LABEL_BITS) - 1

#: Largest vertex id representable alongside a label in an int64.
MAX_VERTEX_ID = (1 << (63 - LABEL_BITS)) - 1

#: The canonical empty edge array.
EMPTY = np.empty(0, dtype=np.int64)


def pack(targets: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Pack parallel ``targets``/``labels`` arrays into edge keys."""
    return (np.asarray(targets, dtype=np.int64) << LABEL_BITS) | np.asarray(
        labels, dtype=np.int64
    )


def pack_one(target: int, label: int) -> int:
    return (target << LABEL_BITS) | label


def targets_of(keys: np.ndarray) -> np.ndarray:
    """Extract the target-vertex component of packed edge keys."""
    return keys >> LABEL_BITS


def labels_of(keys: np.ndarray) -> np.ndarray:
    """Extract the label component of packed edge keys."""
    return keys & LABEL_MASK


def unpack(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    return targets_of(keys), labels_of(keys)


def sort_unique(keys: np.ndarray) -> np.ndarray:
    """Sort and deduplicate an unsorted key array."""
    return np.unique(keys)


def merge_unique(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Merge several *sorted* key arrays into one sorted, duplicate-free array.

    This is the vectorized counterpart of the paper's
    MATCHANDMERGESORTEDARRAYS merging step: duplicates across (and within)
    the inputs collapse to a single output element.  numpy's C-level sort
    plays the role of the min-heap k-way merge; the asymptotics match up
    to the log factor and the constant is far smaller in Python.
    """
    nonempty = [a for a in arrays if len(a)]
    if not nonempty:
        return EMPTY
    if len(nonempty) == 1:
        return np.unique(nonempty[0])
    return np.unique(np.concatenate(nonempty))


def isin_sorted(needles: np.ndarray, haystack: np.ndarray) -> np.ndarray:
    """Boolean mask: which of sorted ``needles`` occur in sorted ``haystack``."""
    if len(haystack) == 0 or len(needles) == 0:
        return np.zeros(len(needles), dtype=bool)
    idx = np.searchsorted(haystack, needles)
    idx[idx == len(haystack)] = len(haystack) - 1
    return haystack[idx] == needles


def setdiff_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted set difference ``a - b`` for sorted unique key arrays."""
    if len(a) == 0 or len(b) == 0:
        return a
    return a[~isin_sorted(a, b)]


def heap_merge_unique(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Reference k-way merge with an explicit min-heap, as in Algorithm 1.

    Functionally identical to :func:`merge_unique`; kept as the faithful
    O(|E| log k) implementation for correctness tests and the merge
    ablation bench (``benchmarks/test_ablation_dedup.py``).
    """
    import heapq

    iters = [iter(a.tolist()) for a in arrays if len(a)]
    out: List[int] = []
    last = None
    for key in heapq.merge(*iters):
        if key != last:
            out.append(key)
            last = key
    return np.asarray(out, dtype=np.int64)


def from_pairs(pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Build a sorted unique key array from ``(target, label)`` pairs."""
    keys = [pack_one(t, l) for t, l in pairs]
    return np.unique(np.asarray(keys, dtype=np.int64))


def to_pairs(keys: np.ndarray) -> List[Tuple[int, int]]:
    """Inverse of :func:`from_pairs`, for tests and debugging."""
    return [(int(k) >> LABEL_BITS, int(k) & LABEL_MASK) for k in keys]
