"""On-disk edge-list formats.

The frontend "dumps the graph to disk in the form of an edge list" (§3);
preprocessing reads it back to shard it into partitions.  Two formats:

* **text** — one ``src<TAB>dst<TAB>label-name`` line per edge, with a
  ``# labels: ...`` header.  Human-readable, used in examples and docs.
* **binary** — a numpy ``.npz`` holding the columnar arrays plus label
  names.  Compact and fast; the default for benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.graph import packed
from repro.graph.graph import MemGraph

PathLike = Union[str, Path]

_TEXT_HEADER = "# graspan-edge-list v1 labels="


def write_text(graph: MemGraph, path: PathLike) -> None:
    """Write ``graph`` as a text edge list with symbolic label names."""
    path = Path(path)
    names = list(graph.label_names)
    dst = packed.targets_of(graph.keys)
    lab = packed.labels_of(graph.keys)
    with path.open("w") as f:
        f.write(_TEXT_HEADER + json.dumps(names) + "\n")
        for i in range(graph.num_edges):
            label = int(lab[i])
            name = names[label] if label < len(names) else str(label)
            f.write(f"{int(graph.src[i])}\t{int(dst[i])}\t{name}\n")


def read_text(path: PathLike) -> MemGraph:
    """Read a text edge list written by :func:`write_text`."""
    path = Path(path)
    names: List[str] = []
    triples: List[Tuple[int, int, int]] = []
    with path.open() as f:
        header = f.readline().rstrip("\n")
        if not header.startswith(_TEXT_HEADER):
            raise ValueError(f"{path}: not a graspan text edge list")
        names = json.loads(header[len(_TEXT_HEADER) :])
        index = {name: i for i, name in enumerate(names)}
        for lineno, line in enumerate(f, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"{path}:{lineno}: malformed edge line {line!r}")
            src, dst, label_name = parts
            if label_name not in index:
                raise ValueError(f"{path}:{lineno}: unknown label {label_name!r}")
            triples.append((int(src), int(dst), index[label_name]))
    return MemGraph.from_edges(triples, label_names=names)


def write_binary(graph: MemGraph, path: PathLike) -> None:
    """Write ``graph`` as a compact ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        src=graph.src,
        keys=graph.keys,
        num_vertices=np.asarray([graph.num_vertices], dtype=np.int64),
        label_names=np.asarray(list(graph.label_names), dtype=object),
    )


def read_binary(path: PathLike) -> MemGraph:
    """Read a ``.npz`` archive written by :func:`write_binary`."""
    with np.load(Path(path), allow_pickle=True) as data:
        return MemGraph(
            src=data["src"],
            keys=data["keys"],
            num_vertices=int(data["num_vertices"][0]),
            label_names=[str(x) for x in data["label_names"]],
        )
