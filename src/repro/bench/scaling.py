"""Backend/thread-count scaling study (the Table 6 style, §5.3).

The paper ran Graspan with 8 threads; this study sweeps the join data
plane (serial / thread / process) across worker counts on one workload
and reports wall time, the backend's own speedup estimate, and — the
real acceptance criterion — that every configuration lands on the same
closure.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import measure
from repro.engine.engine import GraspanEngine
from repro.grammar.builtin import pointsto_grammar_extended
from repro.graph.graph import MemGraph

#: The default sweep: the serial baseline plus pooled backends at two
#: worker counts each.
DEFAULT_SWEEP: Tuple[Tuple[str, int], ...] = (
    ("serial", 1),
    ("thread", 2),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
)


def scaling_rows(
    graph: MemGraph,
    grammar=None,
    sweep: Sequence[Tuple[str, int]] = DEFAULT_SWEEP,
    max_edges_per_partition: Optional[int] = None,
    workdir: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Run the closure once per (backend, workers) config; one row each.

    With ``max_edges_per_partition`` set the runs go out-of-core (a
    temporary directory is used when ``workdir`` is not given), so the
    sweep exercises the same disk path as the paper's runs.
    """
    if grammar is None:
        grammar = pointsto_grammar_extended()
    rows: List[Dict[str, object]] = []
    for backend, workers in sweep:
        rows.append(
            _one_run(
                graph, grammar, backend, workers, max_edges_per_partition, workdir
            )
        )
    return rows


def _one_run(
    graph, grammar, backend, workers, max_edges, workdir
) -> Dict[str, object]:
    def build_engine(wd):
        return GraspanEngine(
            grammar,
            max_edges_per_partition=max_edges,
            workdir=wd,
            num_threads=workers,
            parallel_backend=backend,
        )

    try:
        if max_edges is not None and workdir is None:
            with tempfile.TemporaryDirectory(prefix="graspan-scaling-") as tmp:
                measured = measure(lambda: build_engine(tmp).run(graph).stats)
        else:
            measured = measure(lambda: build_engine(workdir).run(graph).stats)
    except Exception as exc:  # a failed config is a row, not a crash
        return {
            "backend": backend,
            "workers": workers,
            "status": f"error: {type(exc).__name__}",
            "final_edges": 0,
            "wall_s": 0.0,
            "compute_s": 0.0,
            "chunks": 0,
            "balance": 0.0,
            "speedup_est": 0.0,
        }
    stats = measured.value
    par = stats.parallelism_summary()
    return {
        "backend": par["backend"],  # flags e.g. thread(process-fallback)
        "workers": workers,
        "status": "ok",
        "final_edges": stats.final_edges,
        "wall_s": round(measured.seconds, 2),
        "compute_s": round(stats.timers.get("compute"), 2),
        "chunks": par["chunks"],
        "balance": par["worst_chunk_balance"],
        "speedup_est": par["speedup_estimate"],
    }
