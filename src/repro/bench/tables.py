"""Reproduction functions: one per table/figure of the paper's evaluation.

Each function returns plain row dicts (and, where useful, the raw stats
objects) so the ``benchmarks/`` suite can render them and the test suite
can assert on their *shape* — who wins, growth factors, OOM patterns —
per the reproduction contract in EXPERIMENTS.md.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.datalog import run_datalog
from repro.baselines.oda import run_oda
from repro.baselines.vertexcentric import run_vertexcentric
from repro.bench.harness import bench_scale, measure
from repro.checkers.driver import (
    ALL_CHECKERS,
    CheckerRunResult,
    run_analyses,
    run_checkers,
)
from repro.engine.engine import GraspanEngine
from repro.engine.stats import EngineStats
from repro.frontend.graphgen import ProgramGraphs
from repro.frontend.graphs import dataflow_graph, pointer_graph
from repro.grammar.builtin import nullflow_grammar, pointsto_grammar_extended
from repro.graph.graph import MemGraph
from repro.workloads.programs import PAPER_TABLE2, workload_by_name
from repro.workloads.synthetic import Workload

#: Per-workload default scales for benchmarks (multiplied by
#: REPRO_BENCH_SCALE).  linux-like is generated at half shape so the
#: whole suite finishes on a laptop while keeping the Table 2 ordering
#: (linux >> postgresql > httpd in #inlines).
DEFAULT_SCALES = {"linux": 0.5, "postgresql": 1.0, "httpd": 1.0}

#: Nominal per-system memory for the Table 6 comparison, in bytes.  All
#: three backends get the same budget: Graspan spends it on two resident
#: partitions; ODA and the Datalog engine must hold their entire fact
#: set in it.  Sized so the httpd-scale closure fits but the
#: postgresql- and linux-scale closures do not — the paper's outcome
#: pattern (Table 6).
TABLE6_MEMORY_BYTES = 3 * 1024 * 1024

#: What Graspan pays per resident edge (packed int64 key + int64 source
#: bookkeeping); used to convert the nominal budget into partition sizes.
GRASPAN_BYTES_PER_EDGE = 24


@dataclass
class CompiledWorkload:
    """A workload compiled once and shared across experiments."""

    name: str
    workload: Workload
    pg: ProgramGraphs
    pointer: MemGraph

    _analyses = None

    def analyses(self):
        """Pointer + NULL + taint analyses, computed once."""
        if self._analyses is None:
            self._analyses = run_analyses(self.pg)
        return self._analyses


def compile_workload(name: str, scale: Optional[float] = None) -> CompiledWorkload:
    if scale is None:
        scale = DEFAULT_SCALES.get(name, 1.0) * bench_scale()
    workload = workload_by_name(name, scale=scale)
    pg = workload.compile()
    return CompiledWorkload(
        name=name, workload=workload, pg=pg, pointer=pointer_graph(pg)
    )


# ---------------------------------------------------------------------------
# Table 1 — the checker taxonomy (descriptive)
# ---------------------------------------------------------------------------


def table1_rows() -> List[Dict[str, object]]:
    """The checker registry, with each checker's documented blind spot."""
    notes = {
        "Block": ("deadlocks", "misses blocking reached via function pointers"),
        "Null": ("NULL derefs", "only depth-0 explicit NULL returns"),
        "Range": ("unchecked user index", "only directly-assigned user data"),
        "Lock": ("double locks / leaks", "locks identified by variable name"),
        "Free": ("use after free", "freed/used objects matched by name"),
        "Size": ("bad allocation sizes", "checks the allocation site only"),
        "PNull": ("deref before NULL test", "reports paths that cannot be NULL"),
        "UNTest": ("unnecessary NULL tests", "new checker; interprocedural only"),
        "Race": ("data races", "name-keyed globals; intraprocedural locksets"),
        "Taint": (
            "injection flows",
            "same-function name tracking; sanitize treated as a copy",
        ),
        "Async": (
            "blocking in async contexts",
            "only direct blocking calls in async bodies",
        ),
    }
    rows = []
    for cls in ALL_CHECKERS:
        target, limitation = notes[cls.name]
        rows.append(
            {
                "checker": cls.name,
                "target": target,
                "baseline_limitation": limitation,
                "has_baseline": cls.name != "UNTest",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 2 — programs analyzed
# ---------------------------------------------------------------------------


def table2_rows(compiled: Sequence[CompiledWorkload]) -> List[Dict[str, object]]:
    rows = []
    for cw in compiled:
        paper = PAPER_TABLE2.get(cw.name, {})
        rows.append(
            {
                "program": cw.workload.name,
                "loc": cw.workload.loc,
                "functions": len(cw.pg.lowered.functions),
                "inlines": cw.pg.inline_count,
                "contexts": cw.pg.namer.num_contexts,
                "paper_loc": paper.get("loc", ""),
                "paper_inlines": paper.get("inlines", ""),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Tables 3 & 4 — checker effectiveness and module breakdown
# ---------------------------------------------------------------------------


def table3_rows(cw: CompiledWorkload) -> Tuple[List[Dict[str, object]], CheckerRunResult]:
    ctx = cw.analyses()
    result = run_checkers(ctx)
    rows = []
    for cls in ALL_CHECKERS:
        name = cls.name
        bl = result.score(cw.workload.ground_truth, "baseline", name)
        gr = result.score(cw.workload.ground_truth, "augmented", name)
        rows.append(
            {
                "checker": name,
                "bl_reported": bl.reported,
                "bl_fp": bl.false_positives,
                "gr_reported": gr.reported,
                "gr_fp": gr.false_positives,
                "gr_new_true": gr.true_positives,
                "truth": len(cw.workload.truth_for(name)),
            }
        )
    return rows, result


def table4_rows(
    cw: CompiledWorkload, result: Optional[CheckerRunResult] = None
) -> List[Dict[str, object]]:
    """NULL-deref bugs and unnecessary NULL tests per module."""
    if result is None:
        result = run_checkers(cw.analyses())
    null_truth = {t.match_key() for t in cw.workload.truth_for("Null")}
    null_by_module: Dict[str, Tuple[int, int]] = {}
    for report in result.augmented.get("Null", []):
        fp = report.match_key() not in null_truth
        total, fps = null_by_module.get(report.module, (0, 0))
        null_by_module[report.module] = (total + 1, fps + int(fp))
    untest_by_module = result.module_breakdown("augmented", "UNTest")
    modules = sorted(set(null_by_module) | set(untest_by_module))
    rows = []
    for module in modules:
        nulls, fps = null_by_module.get(module, (0, 0))
        rows.append(
            {
                "module": module,
                "null_derefs": nulls,
                "null_fps": fps,
                "untests": untest_by_module.get(module, 0),
            }
        )
    rows.append(
        {
            "module": "Total",
            "null_derefs": sum(r["null_derefs"] for r in rows),
            "null_fps": sum(r["null_fps"] for r in rows),
            "untests": sum(r["untests"] for r in rows),
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Race detector — precision/recall of BL vs GR, closure reuse
# ---------------------------------------------------------------------------


def race_rows(compiled: Sequence[CompiledWorkload]) -> List[Dict[str, object]]:
    """Precision/recall of the Race checker per workload, plus the
    closure-reuse evidence: the race facts come from the pointer closure
    already computed for the other checkers (engine runs stays at the
    usual pointer + 2 dataflow computations; escape + races add zero)."""

    def ratio(num: int, den: int) -> float:
        return round(num / den, 3) if den else 1.0

    rows = []
    for cw in compiled:
        ctx = cw.analyses()
        result = run_checkers(ctx)
        truth = cw.workload.ground_truth
        bl = result.score(truth, "baseline", "Race")
        gr = result.score(truth, "augmented", "Race")
        rows.append(
            {
                "program": cw.workload.name,
                "injected": len(cw.workload.truth_for("Race")),
                "bl_precision": ratio(bl.true_positives, bl.reported),
                "bl_recall": ratio(
                    bl.true_positives, bl.true_positives + bl.false_negatives
                ),
                "gr_precision": ratio(gr.true_positives, gr.reported),
                "gr_recall": ratio(
                    gr.true_positives, gr.true_positives + gr.false_negatives
                ),
                "bl_fp": bl.false_positives,
                "gr_fp": gr.false_positives,
                "threads": ctx.races.num_threads,
                "shared_objects": ctx.races.num_shared_objects,
                "pts_facts_reused": ctx.pointsto.num_points_to_facts,
                "extra_closure_runs": 0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Taint/Async detectors — precision/recall of BL vs GR, closure reuse
# ---------------------------------------------------------------------------


def taint_rows(compiled: Sequence[CompiledWorkload]) -> List[Dict[str, object]]:
    """Precision/recall of the Taint and Async checkers per workload,
    plus the zero-extra-closure evidence: both checkers consume the
    bundled analysis results, so running them triggers no further
    :meth:`GraspanEngine.run` calls and adds no supersteps to the four
    computations already in hand."""

    def ratio(num: int, den: int) -> float:
        return round(num / den, 3) if den else 1.0

    rows = []
    for cw in compiled:
        ctx = cw.analyses()
        computations = [
            ctx.pointsto.computation,
            ctx.nullflow.computation,
            ctx.taintflow.computation,
            ctx.taint.computation,
        ]
        supersteps_before = sum(c.stats.num_supersteps for c in computations)
        run_count = {"n": 0}
        original_run = GraspanEngine.run

        def counting_run(self, *args, **kwargs):
            run_count["n"] += 1
            return original_run(self, *args, **kwargs)

        GraspanEngine.run = counting_run
        try:
            result = run_checkers(ctx)
        finally:
            GraspanEngine.run = original_run
        supersteps_after = sum(c.stats.num_supersteps for c in computations)
        truth = cw.workload.ground_truth
        decoys = set(cw.workload.decoy_functions)
        for checker in ("Taint", "Async"):
            bl = result.score(truth, "baseline", checker)
            gr = result.score(truth, "augmented", checker)
            decoy_fp = sum(
                1
                for report in result.augmented.get(checker, [])
                if report.function in decoys
            )
            rows.append(
                {
                    "program": cw.workload.name,
                    "checker": checker,
                    "injected": len(cw.workload.truth_for(checker)),
                    "bl_precision": ratio(bl.true_positives, bl.reported),
                    "bl_recall": ratio(
                        bl.true_positives, bl.true_positives + bl.false_negatives
                    ),
                    "gr_precision": ratio(gr.true_positives, gr.reported),
                    "gr_recall": ratio(
                        gr.true_positives, gr.true_positives + gr.false_negatives
                    ),
                    "bl_fp": bl.false_positives,
                    "gr_fp": gr.false_positives,
                    "decoy_fp": decoy_fp,
                    "tainted_vertices": ctx.taint.num_tainted,
                    "flows": ctx.taint.num_flows,
                    "extra_closure_runs": run_count["n"],
                    "extra_closure_supersteps": supersteps_after - supersteps_before,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table 5 — Graspan execution statistics (out-of-core)
# ---------------------------------------------------------------------------


def dataflow_input(cw: CompiledWorkload) -> MemGraph:
    """The NULL dataflow graph, bridged with the pointer-analysis aliases."""
    ctx = cw.analyses()
    return dataflow_graph(cw.pg, alias_pairs=ctx.pointsto.deref_alias_pairs())


def run_graspan_out_of_core(
    graph: MemGraph,
    grammar,
    partitions_hint: int = 6,
    workdir: Optional[str] = None,
) -> EngineStats:
    """One out-of-core engine run sized to start with ~partitions_hint shards."""
    max_edges = max(1000, graph.num_edges // partitions_hint)
    if workdir is not None:
        engine = GraspanEngine(grammar, max_edges_per_partition=max_edges, workdir=workdir)
        return engine.run(graph).stats
    with tempfile.TemporaryDirectory(prefix="graspan-bench-") as tmp:
        engine = GraspanEngine(grammar, max_edges_per_partition=max_edges, workdir=tmp)
        return engine.run(graph).stats


def table5_rows(
    compiled: Sequence[CompiledWorkload],
    partitions_hint: int = 6,
) -> Tuple[List[Dict[str, object]], Dict[Tuple[str, str], EngineStats]]:
    rows: List[Dict[str, object]] = []
    stats_by_run: Dict[Tuple[str, str], EngineStats] = {}
    for cw in compiled:
        for analysis, graph, grammar in (
            ("pointer/alias", cw.pointer, pointsto_grammar_extended()),
            ("dataflow", dataflow_input(cw), nullflow_grammar()),
        ):
            stats = run_graspan_out_of_core(graph, grammar, partitions_hint)
            stats_by_run[(cw.name, analysis)] = stats
            rows.append(
                {
                    "program": cw.workload.name,
                    "analysis": analysis,
                    "vertices": stats.num_vertices,
                    "edges_initial": stats.original_edges,
                    "edges_final": stats.final_edges,
                    "growth": round(stats.growth_factor, 1),
                    "partitions": stats.final_partitions,
                    "supersteps": stats.num_supersteps,
                    "repartitions": stats.repartition_count,
                    "compute_s": round(stats.timers.get("compute"), 2),
                    "io_s": round(stats.timers.get("io"), 2),
                    "total_s": round(stats.timers.total(), 2),
                }
            )
    return rows, stats_by_run


# ---------------------------------------------------------------------------
# Figure 4 — edges added across supersteps
# ---------------------------------------------------------------------------


def figure4_series(
    stats_by_run: Dict[Tuple[str, str], EngineStats]
) -> List[Dict[str, object]]:
    """Per-run series of (superstep, added / original edges)."""
    rows = []
    for (program, analysis), stats in sorted(stats_by_run.items()):
        series = stats.added_fraction_series()
        rows.append(
            {
                "program": program,
                "analysis": analysis,
                "supersteps": len(series),
                "series_pct": [round(100 * x, 1) for x in series],
                "first_half_share": round(
                    sum(series[: max(1, len(series) // 2)])
                    / max(sum(series), 1e-12),
                    3,
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 6 — backend comparison: Graspan vs ODA vs Datalog (SociaLite)
# ---------------------------------------------------------------------------


def table6_rows(
    compiled: Sequence[CompiledWorkload],
    memory_bytes: int = TABLE6_MEMORY_BYTES,
    time_budget_seconds: float = 120.0,
) -> List[Dict[str, object]]:
    """All three backends on both analyses, same nominal memory each."""
    max_edges = max(1000, memory_bytes // (2 * GRASPAN_BYTES_PER_EDGE))
    rows = []
    for cw in compiled:
        for analysis, graph, grammar in (
            ("pointer/alias", cw.pointer, pointsto_grammar_extended()),
            ("dataflow", dataflow_input(cw), nullflow_grammar()),
        ):
            with tempfile.TemporaryDirectory(prefix="graspan-t6-") as tmp:
                engine = GraspanEngine(
                    grammar, max_edges_per_partition=max_edges, workdir=tmp
                )
                graspan = measure(lambda: engine.run(graph).stats)
            oda = run_oda(
                graph,
                grammar,
                memory_budget_bytes=memory_bytes,
                time_budget_seconds=time_budget_seconds,
            )
            datalog = run_datalog(
                graph,
                grammar,
                memory_budget_bytes=memory_bytes,
                time_budget_seconds=time_budget_seconds,
            )
            stats: EngineStats = graspan.value
            rows.append(
                {
                    "program": cw.workload.name,
                    "analysis": analysis,
                    "graspan_status": "ok",
                    "graspan_s": round(graspan.seconds, 2),
                    "graspan_ct_s": round(stats.timers.get("compute"), 2),
                    "graspan_io_s": round(stats.timers.get("io"), 2),
                    "oda_status": oda.status,
                    "oda_s": round(oda.seconds, 2),
                    "datalog_status": datalog.status,
                    "datalog_s": round(datalog.seconds, 2),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# §5.4 — GraphChi-like vertex-centric comparison
# ---------------------------------------------------------------------------


def graphchi_rows(
    cw: CompiledWorkload,
    edge_budget: int = 1_500_000,
    time_budget_seconds: float = 120.0,
) -> List[Dict[str, object]]:
    """The divergence study on the dataflow graph (as in the paper)."""
    graph = dataflow_input(cw)
    rows = []
    for dedup in ("none", "buffer", "full"):
        result = run_vertexcentric(
            graph,
            nullflow_grammar(),
            dedup=dedup,
            edge_budget=edge_budget,
            time_budget_seconds=time_budget_seconds,
        )
        rows.append(
            {
                "system": f"vertex-centric (dedup={dedup})",
                "status": result.status,
                "edges_added": result.edges_added,
                "total_edges": result.total_edges,
                "seconds": round(result.seconds, 2),
            }
        )
    graspan = measure(
        lambda: GraspanEngine(nullflow_grammar()).run(graph).stats
    )
    stats: EngineStats = graspan.value
    rows.append(
        {
            "system": "Graspan (merge dedup)",
            "status": "ok",
            "edges_added": stats.total_edges_added,
            "total_edges": stats.final_edges,
            "seconds": round(graspan.seconds, 2),
        }
    )
    return rows
