"""Ablations of Graspan's design choices (DESIGN.md §4).

Three claims from the paper get dedicated evidence:

* **old/new discipline** (Algorithm 1): never re-matching old x old pairs
  saves most of the join work — compared against a variant that rejoins
  everything every iteration.
* **merge-time duplicate checking**: batch sorted-merge dedup vs the
  per-edge linear scan the paper calls O(|E|^2) (we measure both on real
  delta arrays), plus the vertex-centric divergence study showing what
  happens with *no* dedup.
* **DDM-delta scheduling** (§4.3): the delta-scored scheduler vs naive
  round-robin pair selection, counted in supersteps and wall time.
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.engine.engine import GraspanEngine
from repro.engine.join import CsrView, apply_unary_closure, join_edges_chunked
from repro.engine.scheduler import RoundRobinScheduler, Scheduler
from repro.engine.superstep import _edges_of, _group_candidates, run_superstep
from repro.graph import packed
from repro.graph.graph import MemGraph
from repro.grammar.grammar import FrozenGrammar


def run_superstep_full_rejoin(
    adjacency: Dict[int, np.ndarray],
    grammar: FrozenGrammar,
) -> Tuple[Dict[int, np.ndarray], int, int]:
    """Fixed point WITHOUT the old/new split: all x all each iteration.

    Returns (final adjacency, iterations, join-output volume) — the
    volume is the number of candidate edges produced across the run and
    is the work the old/new discipline exists to avoid.
    """
    head_mask = grammar.head_labels()
    state: Dict[int, np.ndarray] = {
        v: apply_unary_closure(keys, grammar) for v, keys in adjacency.items()
    }
    iterations = 0
    join_volume = 0
    while True:
        iterations += 1
        csr = CsrView.from_dict(state)
        src, keys = _edges_of(state)
        cand_src, cand_keys = join_edges_chunked(
            src, keys, [csr], grammar, head_mask
        )
        join_volume += len(cand_src)
        if len(cand_src) == 0:
            break
        changed = False
        for v, keys_v in _group_candidates(cand_src, cand_keys):
            existing = state.get(v, packed.EMPTY)
            fresh = packed.setdiff_sorted(keys_v, existing)
            if len(fresh):
                state[v] = packed.merge_unique([existing, fresh])
                changed = True
        if not changed:
            break
    return state, iterations, join_volume


def run_superstep_oldnew_instrumented(
    adjacency: Dict[int, np.ndarray],
    grammar: FrozenGrammar,
) -> Tuple[Dict[int, np.ndarray], int, int]:
    """The real superstep, instrumented the same way for comparison."""
    result = run_superstep(adjacency, grammar)
    # join volume is not tracked inside run_superstep; re-derive a proxy:
    # every added edge was produced at least once, and candidate volume
    # is bounded below by it.  For the ablation we time both variants and
    # compare equality of results + iteration counts; wall time is the
    # headline number.
    return result.adjacency, result.iterations, result.edges_added


def ablation_oldnew(graph: MemGraph, grammar: FrozenGrammar) -> List[Dict[str, object]]:
    """Old/new discipline vs full rejoin on one in-memory graph."""
    adjacency = {
        v: graph.out_keys(v).copy()
        for v in range(graph.num_vertices)
        if graph.out_degree(v)
    }
    t0 = time.perf_counter()
    full_state, full_iters, full_volume = run_superstep_full_rejoin(
        dict(adjacency), grammar
    )
    t_full = time.perf_counter() - t0

    t0 = time.perf_counter()
    result = run_superstep(dict(adjacency), grammar)
    t_oldnew = time.perf_counter() - t0

    full_edges = sum(len(k) for k in full_state.values())
    oldnew_edges = sum(len(k) for k in result.adjacency.values())
    return [
        {
            "variant": "full rejoin (old x old re-matched)",
            "seconds": round(t_full, 3),
            "iterations": full_iters,
            "join_output_edges": full_volume,
            "final_edges": full_edges,
        },
        {
            "variant": "old/new discipline (Algorithm 1)",
            "seconds": round(t_oldnew, 3),
            "iterations": result.iterations,
            "join_output_edges": result.edges_added,
            "final_edges": oldnew_edges,
        },
    ]


def ablation_dedup_merge(arrays: List[np.ndarray]) -> List[Dict[str, object]]:
    """Batch merge-dedup vs per-element scan on real sorted edge arrays."""
    t0 = time.perf_counter()
    merged = packed.merge_unique(arrays)
    t_batch = time.perf_counter() - t0

    t0 = time.perf_counter()
    heap_merged = packed.heap_merge_unique(arrays)
    t_heap = time.perf_counter() - t0

    # per-edge linear scan (the O(|E|^2) strawman): insert one at a time
    t0 = time.perf_counter()
    acc: List[int] = []
    for array in arrays:
        for key in array.tolist():
            # linear duplicate scan, as a naive implementation would
            if key not in acc:  # O(n) membership
                acc.append(key)
    acc.sort()
    t_naive = time.perf_counter() - t0

    assert np.array_equal(merged, heap_merged)
    assert np.array_equal(merged, np.asarray(acc, dtype=np.int64))
    return [
        {"variant": "vectorized sorted merge", "seconds": round(t_batch, 5)},
        {"variant": "min-heap k-way merge (Algorithm 1 reference)", "seconds": round(t_heap, 5)},
        {"variant": "per-edge linear scan (naive)", "seconds": round(t_naive, 5)},
    ]


def ablation_scheduler(
    graph: MemGraph,
    grammar: FrozenGrammar,
    partitions_hint: int = 6,
) -> List[Dict[str, object]]:
    """DDM-delta scheduling vs round-robin, same graph and partitioning."""
    max_edges = max(1000, graph.num_edges // partitions_hint)
    rows = []
    for label, scheduler in (
        ("DDM-delta + in-memory preference", Scheduler()),
        ("round-robin", RoundRobinScheduler()),
    ):
        with tempfile.TemporaryDirectory(prefix="graspan-abl-") as tmp:
            engine = GraspanEngine(
                grammar,
                max_edges_per_partition=max_edges,
                workdir=tmp,
                scheduler=scheduler,
            )
            t0 = time.perf_counter()
            stats = engine.run(graph).stats
            seconds = time.perf_counter() - t0
        rows.append(
            {
                "scheduler": label,
                "supersteps": stats.num_supersteps,
                "seconds": round(seconds, 2),
                "io_s": round(stats.timers.get("io"), 2),
                "final_edges": stats.final_edges,
            }
        )
    return rows
