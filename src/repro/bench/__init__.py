"""Benchmark harness and per-table/figure reproduction functions."""

from repro.bench.harness import (
    SCALE_ENV,
    Measured,
    bench_scale,
    measure,
    render_table,
    rows_from_dicts,
    save_and_print,
)
from repro.bench.harness import sparkline
from repro.bench.tables import (
    DEFAULT_SCALES,
    TABLE6_MEMORY_BYTES,
    CompiledWorkload,
    compile_workload,
    dataflow_input,
    figure4_series,
    graphchi_rows,
    race_rows,
    run_graspan_out_of_core,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    table6_rows,
    taint_rows,
)
from repro.bench.ablation import (
    ablation_dedup_merge,
    ablation_oldnew,
    ablation_scheduler,
)
from repro.bench.residency import DEFAULT_BUDGET_FACTORS, residency_rows
from repro.bench.scaling import DEFAULT_SWEEP, scaling_rows

__all__ = [
    "SCALE_ENV",
    "Measured",
    "bench_scale",
    "measure",
    "render_table",
    "rows_from_dicts",
    "save_and_print",
    "sparkline",
    "DEFAULT_SCALES",
    "TABLE6_MEMORY_BYTES",
    "CompiledWorkload",
    "compile_workload",
    "dataflow_input",
    "figure4_series",
    "graphchi_rows",
    "race_rows",
    "run_graspan_out_of_core",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
    "taint_rows",
    "ablation_dedup_merge",
    "ablation_oldnew",
    "ablation_scheduler",
    "DEFAULT_SWEEP",
    "scaling_rows",
    "DEFAULT_BUDGET_FACTORS",
    "residency_rows",
]
