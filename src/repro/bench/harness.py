"""Benchmark harness plumbing: scaling knobs, table rendering, run records.

Every experiment in :mod:`repro.bench.tables` returns plain row dicts so
tests can assert on them; :func:`render_table` turns them into the ASCII
tables the ``benchmarks/`` suite prints and saves.  ``REPRO_BENCH_SCALE``
scales every workload (default 1.0); CI or curious users can turn it up.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

#: Environment variable scaling all benchmark workloads.
SCALE_ENV = "REPRO_BENCH_SCALE"


def bench_scale(default: float = 1.0) -> float:
    raw = os.environ.get(SCALE_ENV)
    if raw is None:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError(f"{SCALE_ENV} must be positive, got {raw}")
    return value


@dataclass
class Measured:
    """A value plus how long it took to produce."""

    value: object
    seconds: float


def measure(fn: Callable[[], object]) -> Measured:
    start = time.perf_counter()
    value = fn()
    return Measured(value=value, seconds=time.perf_counter() - start)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render an ASCII table in the style of the paper's tables."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths))

    rule = "-+-".join("-" * width for width in widths)
    out = [f"== {title} ==", line(cells[0]), rule]
    out.extend(line(row) for row in cells[1:])
    if note:
        out.append(f"({note})")
    return "\n".join(out)


def rows_from_dicts(
    dicts: Sequence[Dict[str, object]], keys: Sequence[str]
) -> List[List[object]]:
    return [[d.get(k, "") for k in keys] for d in dicts]


#: Glyphs for ASCII sparklines, lowest to highest.
_SPARK_GLYPHS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a series as a fixed-width ASCII sparkline.

    Used to draw Figure 4's per-superstep curves in a terminal.  Values
    are bucketed to ``width`` columns (max within each bucket) and
    scaled to the glyph ramp.
    """
    if not values:
        return ""
    values = [max(0.0, float(v)) for v in values]
    if len(values) > width:
        bucket = len(values) / width
        values = [
            max(values[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            for i in range(width)
        ]
    peak = max(values)
    if peak == 0:
        return _SPARK_GLYPHS[0] * len(values)
    scale = len(_SPARK_GLYPHS) - 1
    return "".join(
        _SPARK_GLYPHS[min(scale, round(v / peak * scale))] for v in values
    )


def save_and_print(text: str, path: Optional[str] = None) -> None:
    """Print a rendered table and append it to a results file."""
    print("\n" + text + "\n")
    if path is not None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "a") as f:
            f.write(text + "\n\n")
