"""Memory-budgeted residency study: peak resident bytes vs. budget.

Graspan's claim is that the closure completes in whatever memory it is
given (§4.1): partitions beyond the budget cycle through disk.  This
study runs the same pointer closure under a sweep of byte budgets and
reports, per budget, the tracked peak resident bytes, the eviction and
cache-hit counts, and the partition-file I/O volume — plus the invariant
the engine promises: the peak never exceeds the budget by more than one
partition, and every budget lands on the identical closure.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import measure
from repro.engine.engine import GraspanEngine
from repro.grammar.builtin import pointsto_grammar_extended
from repro.graph.graph import MemGraph

#: Default budget sweep, as multiples of the largest partition observed
#: in the unbudgeted baseline run: roomy, tight, and minimal (the pinned
#: superstep pair is two partitions, so 2x is the practical floor).
DEFAULT_BUDGET_FACTORS = (6, 3, 2)


def residency_rows(
    graph: MemGraph,
    grammar=None,
    budgets: Optional[Sequence[int]] = None,
    budget_factors: Sequence[int] = DEFAULT_BUDGET_FACTORS,
    max_edges_per_partition: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Run the closure unbudgeted, then once per budget; one row each.

    When ``budgets`` is not given, budgets are derived from the baseline
    run's largest partition via ``budget_factors``.  Every row carries
    ``final_edges`` so callers can assert the closure is unchanged.
    """
    if grammar is None:
        grammar = pointsto_grammar_extended()
    if max_edges_per_partition is None:
        max_edges_per_partition = max(1000, graph.num_edges // 6)

    rows = [_one_run(graph, grammar, max_edges_per_partition, None)]
    if budgets is None:
        max_part = int(rows[0]["max_partition_bytes"])
        budgets = [factor * max_part for factor in budget_factors]
    for budget in budgets:
        rows.append(_one_run(graph, grammar, max_edges_per_partition, int(budget)))
    return rows


def _one_run(
    graph: MemGraph,
    grammar,
    max_edges_per_partition: int,
    memory_budget: Optional[int],
) -> Dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="graspan-residency-") as wd:
        engine = GraspanEngine(
            grammar,
            max_edges_per_partition=max_edges_per_partition,
            workdir=wd,
            memory_budget=memory_budget,
        )
        measured = measure(lambda: engine.run(graph).stats)
    stats = measured.value
    return {
        "budget": memory_budget if memory_budget is not None else "unlimited",
        "peak_resident_bytes": stats.peak_resident_bytes,
        "max_partition_bytes": stats.max_partition_bytes,
        "evictions": stats.evictions,
        "loads": stats.partition_loads,
        "cache_hits": stats.cache_hits,
        "bytes_read": stats.bytes_read,
        "bytes_written": stats.bytes_written,
        "partitions": stats.final_partitions,
        "final_edges": stats.final_edges,
        "wall_s": round(measured.seconds, 2),
    }
