"""Lowering MiniC ASTs to three-address statements.

Complicated statements are broken down by introducing temporaries (§2.2)
until every statement is one of the four pointer-relevant forms — copy
``a = b``, load ``a = *b``, store ``*a = b``, address-of ``a = &b`` — or
an allocation, NULL/const assignment, call, return, builtin, or test.
Each lowered statement records its source line, its position, and the
stack of normalized pointer guards enclosing it; the checkers are built
entirely on this representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.frontend import ast


@dataclass(frozen=True)
class Guard:
    """One enclosing normalized pointer test."""

    var: str
    nonnull: bool  # True: this branch runs only when var is non-NULL
    line: int


@dataclass
class LStmt:
    """A lowered three-address statement.

    ``kind`` is one of: ``copy``, ``load``, ``store``, ``addrof``,
    ``alloc``, ``null``, ``const``, ``binop``, ``funcref``, ``call``,
    ``return``, ``test``, ``free``, ``lock``, ``unlock``, ``sink``,
    ``sanitize``.
    Field usage per kind:

    =========  =========================================================
    copy      lhs = rhs
    load      lhs = *rhs
    store     *lhs = rhs
    addrof    lhs = &rhs
    alloc     lhs = malloc()        (one allocation site per statement)
    null      lhs = NULL
    const     lhs = <integer>
    binop     lhs = f(operands)     (non-pointer arithmetic; operands kept
                                     so taint tracking can flow through)
    funcref   lhs = &callee         (function used as a value)
    call      [lhs =] callee(args)  (direct or via function pointer)
    spawn     spawn callee(args)    (thread creation; no result value)
    return    rhs is the returned variable (None for bare return)
    test      a normalized NULL test on ``rhs`` (polarity in ``nonnull``)
    rangetest a bounds check on variable ``rhs`` (Range checker)
    free      free(rhs)
    lock      lock(rhs)
    unlock    unlock(rhs)
    sink      callee(args)          (taint sink: ``query``/``exec``; the
                                     arguments must be sanitized)
    sanitize  lhs = sanitize(rhs)   (taint cleanser: lhs is clean)
    =========  =========================================================

    ``awaited`` is True on ``call`` statements written ``await f(...)``
    (informational; the async-misuse analysis works off call structure).
    """

    kind: str
    line: int
    guards: Tuple[Guard, ...]
    lhs: Optional[str] = None
    rhs: Optional[str] = None
    callee: Optional[str] = None
    args: Tuple[str, ...] = ()
    operands: Tuple[str, ...] = ()
    nonnull: bool = True
    index_var: Optional[str] = None  # array-index variable (Range checker)
    size: Optional[int] = None  # malloc byte count (Size checker)
    awaited: bool = False  # call written as ``await callee(...)``


@dataclass
class LoweredFunction:
    """One function in three-address form."""

    name: str
    params: List[str]
    pointer_params: List[bool]
    module: str
    returns_pointer: bool
    stmts: List[LStmt] = field(default_factory=list)
    locals: List[str] = field(default_factory=list)
    line: int = 0
    pointer_vars: Set[str] = field(default_factory=set)  # declared pointers
    var_sizes: Dict[str, int] = field(default_factory=dict)  # base-type sizes
    is_async: bool = False  # declared ``async``

    def return_vars(self) -> List[str]:
        return [s.rhs for s in self.stmts if s.kind == "return" and s.rhs]

    def statements_of_kind(self, *kinds: str) -> List[LStmt]:
        return [s for s in self.stmts if s.kind in kinds]


@dataclass
class LoweredProgram:
    functions: Dict[str, LoweredFunction]
    global_vars: List[str]
    source: ast.Program

    def function_names(self) -> List[str]:
        return list(self.functions)


class _FunctionLowerer:
    def __init__(self, func: ast.Function, function_names: frozenset) -> None:
        self.func = func
        self.function_names = function_names
        self.stmts: List[LStmt] = []
        self.locals: List[str] = []
        self.guards: List[Guard] = []
        self._temp_counter = 0
        self._pending_index: Optional[str] = None
        self.pointer_vars: Set[str] = set()
        self.var_sizes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def run(self) -> LoweredFunction:
        self._lower_body(self.func.body)
        pointer_vars = set(self.pointer_vars)
        var_sizes = dict(self.var_sizes)
        sizes = self.func.param_sizes or [4] * len(self.func.params)
        for param, is_ptr, size in zip(
            self.func.params, self.func.pointer_params, sizes
        ):
            if is_ptr:
                pointer_vars.add(param)
            var_sizes.setdefault(param, size)
        return LoweredFunction(
            name=self.func.name,
            params=list(self.func.params),
            pointer_params=list(self.func.pointer_params),
            module=self.func.module,
            returns_pointer=self.func.returns_pointer,
            stmts=self.stmts,
            locals=self.locals,
            line=self.func.line,
            pointer_vars=pointer_vars,
            var_sizes=var_sizes,
            is_async=self.func.is_async,
        )

    def _fresh(self) -> str:
        self._temp_counter += 1
        name = f"%t{self._temp_counter}"
        self.locals.append(name)
        return name

    def _emit(self, kind: str, line: int, **fields) -> LStmt:
        stmt = LStmt(kind=kind, line=line, guards=tuple(self.guards), **fields)
        self.stmts.append(stmt)
        return stmt

    # ------------------------------------------------------------------
    def _lower_body(self, body: Sequence[ast.Stmt]) -> None:
        for stmt in body:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Decl):
            self.locals.append(stmt.name)
            if stmt.is_pointer:
                self.pointer_vars.add(stmt.name)
            self.var_sizes[stmt.name] = stmt.base_size
            if stmt.init is not None:
                self._lower_assign(ast.Var(stmt.name), stmt.init, stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt.lhs, stmt.rhs, stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_effect_call(stmt.expr, stmt.line)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._emit("return", stmt.line)
            else:
                var = self._lower_expr(stmt.value, stmt.line)
                self._emit("return", stmt.line, rhs=var)
        elif isinstance(stmt, ast.Spawn):
            arg_vars = tuple(
                self._lower_expr(a, stmt.line) for a in stmt.args
            )
            self._emit("spawn", stmt.line, callee=stmt.callee, args=arg_vars)
        elif isinstance(stmt, ast.If):
            self._lower_branching(stmt.cond, stmt.then_body, stmt.else_body, stmt.line)
        elif isinstance(stmt, ast.While):
            self._lower_branching(stmt.cond, stmt.body, [], stmt.line)
        else:
            raise TypeError(f"unknown statement {stmt!r}")

    def _lower_branching(
        self,
        cond: ast.Cond,
        then_body: Sequence[ast.Stmt],
        else_body: Sequence[ast.Stmt],
        line: int,
    ) -> None:
        if cond.var is not None:
            self._emit("test", line, rhs=cond.var, nonnull=cond.nonnull_when_true)
            then_guard = Guard(cond.var, cond.nonnull_when_true, line)
            else_guard = Guard(cond.var, not cond.nonnull_when_true, line)
        elif cond.range_var is not None:
            self._emit("rangetest", line, rhs=cond.range_var)
            then_guard = else_guard = None
        else:
            # Opaque condition: evaluate for side effects, no guard info.
            self._lower_expr(cond.expr, line, allow_void=True)
            then_guard = else_guard = None

        if then_guard is not None:
            self.guards.append(then_guard)
        self._lower_body(then_body)
        if then_guard is not None:
            self.guards.pop()

        if else_body:
            if else_guard is not None:
                self.guards.append(else_guard)
            self._lower_body(else_body)
            if else_guard is not None:
                self.guards.pop()

    # ------------------------------------------------------------------
    def _lower_assign(self, lhs: ast.Expr, rhs: ast.Expr, line: int) -> None:
        if isinstance(lhs, ast.Var):
            self._lower_expr(rhs, line, into=lhs.name)
        elif isinstance(lhs, ast.Deref):
            rhs_var = self._lower_expr(rhs, line)
            base_var = self._lower_deref_base(lhs.operand, line)
            self._emit(
                "store",
                line,
                lhs=base_var,
                rhs=rhs_var,
                index_var=self._take_pending_index(),
            )
        else:
            raise TypeError(f"line {line}: bad assignment target {lhs!r}")

    def _lower_deref_base(self, operand: ast.Expr, line: int) -> str:
        """Lower the operand of a dereference, capturing array indices."""
        if isinstance(operand, ast.BinOp) and operand.op == "[]":
            base_var = self._lower_expr(operand.left, line)
            index_var = (
                operand.right.name
                if isinstance(operand.right, ast.Var)
                else self._lower_expr(operand.right, line)
            )
            # The caller emits the load/store on base_var; it picks the
            # index up via _take_pending_index so the Range checker can
            # see which variable indexed the array.
            self._pending_index = index_var
            return base_var
        return self._lower_expr(operand, line)

    def _take_pending_index(self) -> Optional[str]:
        index, self._pending_index = self._pending_index, None
        return index

    def _lower_expr(
        self,
        expr: ast.Expr,
        line: int,
        into: Optional[str] = None,
        allow_void: bool = False,
    ) -> str:
        """Lower ``expr``; the result lands in ``into`` or a fresh temp."""

        def dest() -> str:
            return into if into is not None else self._fresh()

        if isinstance(expr, ast.Var):
            if expr.name in self.function_names:
                d = dest()
                self._emit("funcref", line, lhs=d, callee=expr.name)
                return d
            if into is not None:
                self._emit("copy", line, lhs=into, rhs=expr.name)
                return into
            return expr.name
        if isinstance(expr, ast.Null):
            d = dest()
            self._emit("null", line, lhs=d)
            return d
        if isinstance(expr, ast.IntConst):
            d = dest()
            self._emit("const", line, lhs=d)
            return d
        if isinstance(expr, ast.Malloc):
            d = dest()
            self._emit("alloc", line, lhs=d, size=expr.size)
            return d
        if isinstance(expr, ast.AddrOf):
            assert isinstance(expr.operand, ast.Var)
            d = dest()
            self._emit("addrof", line, lhs=d, rhs=expr.operand.name)
            return d
        if isinstance(expr, ast.Deref):
            base = self._lower_deref_base(expr.operand, line)
            d = dest()
            self._emit("load", line, lhs=d, rhs=base, index_var=self._take_pending_index())
            return d
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, line, into, allow_void)
        if isinstance(expr, ast.BinOp):
            left = self._lower_expr(expr.left, line)
            right = self._lower_expr(expr.right, line)
            d = dest()
            self._emit("binop", line, lhs=d, operands=(left, right))
            return d
        raise TypeError(f"line {line}: cannot lower {expr!r}")

    def _lower_call(
        self,
        call: ast.Call,
        line: int,
        into: Optional[str],
        allow_void: bool,
    ) -> str:
        arg_vars = tuple(self._lower_expr(a, line) for a in call.args)
        # Taint intrinsics (a user-defined function of the same name
        # shadows the intrinsic, like ``input`` does via the generic
        # call path below).
        if call.callee not in self.function_names:
            if call.callee in ast.TAINT_SINKS:
                self._emit(
                    "sink",
                    line,
                    callee=call.callee,
                    rhs=arg_vars[0] if arg_vars else None,
                    args=arg_vars,
                )
                return into if into is not None else ""
            if call.callee in ast.TAINT_CLEANSERS:
                d = into if into is not None else self._fresh()
                self._emit(
                    "sanitize", line, lhs=d, rhs=arg_vars[0] if arg_vars else None
                )
                return d
        builtin_kind = {
            "free": "free",
            "lock": "lock",
            "unlock": "unlock",
        }.get(call.callee)
        if builtin_kind is not None:
            self._emit(builtin_kind, line, rhs=arg_vars[0] if arg_vars else None)
            return into if into is not None else ""
        lhs = into
        if lhs is None and not allow_void:
            lhs = self._fresh()
        self._emit(
            "call",
            line,
            lhs=lhs,
            callee=call.callee,
            args=arg_vars,
            awaited=call.awaited,
        )
        return lhs if lhs is not None else ""

    def _lower_effect_call(self, expr: ast.Expr, line: int) -> None:
        if isinstance(expr, ast.Call):
            self._lower_call(expr, line, into=None, allow_void=True)
        else:
            self._lower_expr(expr, line, allow_void=True)


def lower_program(program: ast.Program) -> LoweredProgram:
    """Lower every function of ``program`` to three-address form."""
    function_names = frozenset(program.function_names())
    lowered: Dict[str, LoweredFunction] = {}
    for func in program.functions:
        if func.name in lowered:
            raise ValueError(
                f"duplicate function definition {func.name!r} "
                f"(line {func.line})"
            )
        lowered[func.name] = _FunctionLowerer(func, function_names).run()
    return LoweredProgram(
        functions=lowered,
        global_vars=program.global_names(),
        source=program,
    )
