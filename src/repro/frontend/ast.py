"""Abstract syntax for MiniC, the C subset our frontend analyzes.

MiniC covers exactly the constructs the paper's analyses consume: pointer
assignments (``a = b``, ``a = &b``, ``a = *b``, ``*a = b``), allocation
(``malloc``), ``NULL``, field/array accesses (modeled as dereferences with
offsets ignored, §2.2), functions, direct and indirect calls, guards
(``if``/``while`` conditions, which the checkers read as NULL tests),
thread creation (``spawn f(args);``, the race detector's concurrency
source), ``async`` functions and ``await``-ed calls (the async-misuse
checker's context source), the taint intrinsics (``input`` source,
``query``/``exec`` sinks, ``sanitize`` cleanser), and the builtins the
Table 1 checkers care about (``free``, ``lock``, ``unlock``, ``sleep``,
``get_user``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Var(Expr):
    """A variable (or function name used as a value)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Deref(Expr):
    """``*e`` — also the lowering of ``e->f``, ``e[i]`` (offsets ignored)."""

    operand: Expr

    def __str__(self) -> str:
        return f"*{self.operand}"


@dataclass(frozen=True)
class AddrOf(Expr):
    """``&v``."""

    operand: Expr

    def __str__(self) -> str:
        return f"&{self.operand}"


@dataclass(frozen=True)
class Malloc(Expr):
    """A heap allocation site; ``size`` is the literal byte count if known."""

    size: Optional[int] = None

    def __str__(self) -> str:
        return f"malloc({self.size if self.size is not None else ''})"


@dataclass(frozen=True)
class Null(Expr):
    """The NULL constant."""

    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class IntConst(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Call(Expr):
    """``callee(args)``; ``callee`` may be a function or a pointer variable.

    ``awaited`` marks ``await callee(args)`` — the caller suspends until
    the (async) callee finishes, so control still flows through the call
    like a direct call; the flag exists for the async-misuse analysis.
    """

    callee: str
    args: Tuple[Expr, ...]
    awaited: bool = False

    def __str__(self) -> str:
        prefix = "await " if self.awaited else ""
        return f"{prefix}{self.callee}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic/comparison; its result never carries a pointer value."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ---------------------------------------------------------------------------
# conditions (guards)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Cond:
    """A guard condition, normalized for the NULL-test checkers.

    ``var`` is set when the condition is a recognizable pointer test:
    ``if (p)`` / ``if (p != NULL)`` → ``nonnull_when_true=True``;
    ``if (!p)`` / ``if (p == NULL)`` → ``nonnull_when_true=False``.
    ``range_var`` is set when the condition compares a variable against a
    bound (``if (i < n)``), which the Range checker reads as a bounds
    check.  Other conditions keep both fields ``None`` and are opaque.
    """

    expr: Expr
    var: Optional[str] = None
    nonnull_when_true: bool = True
    range_var: Optional[str] = None

    def __str__(self) -> str:
        return str(self.expr)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements; ``line`` is the 1-based source line."""

    line: int = 0


@dataclass
class Decl(Stmt):
    name: str = ""
    is_pointer: bool = False
    init: Optional[Expr] = None
    base_size: int = 4  # sizeof the base type (int 4, char 1, long 8)


@dataclass
class Assign(Stmt):
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Stmt):
    """A call used for effect, e.g. ``free(p);``."""

    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Spawn(Stmt):
    """``spawn f(args);`` — start ``f`` on a new thread.

    The spawned call never produces a value in the parent; its arguments
    flow into the callee exactly like a direct call's, but the callee
    body runs concurrently with everything after the statement (the race
    detector's concurrency source).
    """

    callee: str = ""
    args: Tuple[Expr, ...] = ()


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Cond = None  # type: ignore[assignment]
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Cond = None  # type: ignore[assignment]
    body: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass
class Function:
    """A function definition."""

    name: str
    params: List[str]
    pointer_params: List[bool]
    body: List[Stmt]
    returns_pointer: bool = False
    module: str = ""  # e.g. "drivers", "fs" — the Table 4 taxonomy
    line: int = 0
    param_sizes: List[int] = field(default_factory=list)  # base-type sizes
    is_async: bool = False  # declared ``async`` — an async-context root


@dataclass
class Global:
    name: str
    is_pointer: bool = False
    line: int = 0
    base_size: int = 4


@dataclass
class Program:
    """A whole MiniC codebase (possibly many files concatenated)."""

    functions: List[Function] = field(default_factory=list)
    globals: List[Global] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")

    def function_names(self) -> List[str]:
        return [f.name for f in self.functions]

    def global_names(self) -> List[str]:
        return [g.name for g in self.globals]

    def merged_with(self, other: "Program") -> "Program":
        return Program(
            functions=self.functions + other.functions,
            globals=self.globals + other.globals,
        )

    def loc(self) -> int:
        """Approximate lines of code: the highest line number seen."""
        best = 0
        for f in self.functions:
            for s in _walk(f.body):
                best = max(best, s.line)
        return best


def _walk(stmts: Sequence[Stmt]):
    for s in stmts:
        yield s
        if isinstance(s, If):
            yield from _walk(s.then_body)
            yield from _walk(s.else_body)
        elif isinstance(s, While):
            yield from _walk(s.body)


#: Builtin function names with special meaning to graph generation or the
#: checkers.  ``malloc`` is an expression; the rest appear as calls.
BUILTINS = frozenset(
    {
        "malloc",
        "free",
        "lock",
        "unlock",
        "sleep",  # the canonical blocking function (Block checker)
        "get_user",  # returns user-controlled data (Range checker)
        "disable_irq",
        "enable_irq",
        "input",  # taint source: returns untrusted external data
        "query",  # taint sink: SQL-style injection point
        "exec",  # taint sink: command-execution injection point
        "sanitize",  # taint cleanser: returns a cleansed copy of its arg
    }
)

#: Builtins that block (must not be called while holding a lock).
BLOCKING_BUILTINS = frozenset({"sleep"})

#: Taint intrinsics: sources return untrusted external data, sinks must
#: never receive it unsanitized, and the cleanser stops propagation.
TAINT_SOURCES = frozenset({"input"})
TAINT_SINKS = frozenset({"query", "exec"})
TAINT_CLEANSERS = frozenset({"sanitize"})
