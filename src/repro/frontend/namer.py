"""Vertex naming: unique ids for every cloned expression (§3, §4.4).

Aggressive inlining clones each function's expression graph once per
calling context, so a vertex id must identify *(context, function,
expression)* and be reversible — Graspan "generates a unique ID in a way
so that we can easily locate the variable it corresponds to and its
containing function from the ID", and provides translation APIs to map
results back to source (§4.4).

Contexts form a tree: context 0 is the root (globals and top-level
function instances hang off it); every inline creates a child context
labeled with its call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class VertexInfo:
    """Everything known about one vertex id."""

    vid: int
    function: str  # containing function ("" for globals/specials)
    context: int
    symbol: str  # source-level expression, e.g. "p", "*p", "alloc@12"
    line: int


class VertexNamer:
    """Interns (context, function, symbol) triples into dense vertex ids."""

    def __init__(self) -> None:
        # context table: context id -> (parent context, call-site label)
        self._context_parent: List[int] = [0]
        self._context_label: List[str] = ["<root>"]
        # columnar vertex attributes
        self._func: List[str] = []
        self._ctx: List[int] = []
        self._sym: List[str] = []
        self._line: List[int] = []
        # reverse indices
        self._by_func_sym: Dict[Tuple[str, str], List[int]] = {}

    # ------------------------------------------------------------------
    # contexts
    # ------------------------------------------------------------------
    def new_context(self, parent: int, call_site: str) -> int:
        ctx = len(self._context_parent)
        self._context_parent.append(parent)
        self._context_label.append(call_site)
        return ctx

    @property
    def num_contexts(self) -> int:
        return len(self._context_parent)

    def context_chain(self, ctx: int) -> List[str]:
        """The call-site chain from the root to ``ctx`` (§1: calling context)."""
        chain: List[str] = []
        while ctx != 0:
            chain.append(self._context_label[ctx])
            ctx = self._context_parent[ctx]
        chain.reverse()
        return chain

    def context_parent(self, ctx: int) -> int:
        return self._context_parent[ctx]

    def is_context_ancestor(self, ancestor: int, ctx: int) -> bool:
        """Is ``ancestor`` a strict ancestor of ``ctx`` in the call tree?

        Contexts form the (inlined) call tree; a value flowing from a
        clone into a strict-ancestor context has left its frame — the
        escape analysis' core test.
        """
        if ancestor == ctx:
            return False
        while ctx != 0:
            ctx = self._context_parent[ctx]
            if ctx == ancestor:
                return True
        return False

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def new_vertex(self, function: str, ctx: int, symbol: str, line: int = 0) -> int:
        vid = len(self._func)
        self._func.append(function)
        self._ctx.append(ctx)
        self._sym.append(symbol)
        self._line.append(line)
        self._by_func_sym.setdefault((function, symbol), []).append(vid)
        return vid

    @property
    def num_vertices(self) -> int:
        return len(self._func)

    def info(self, vid: int) -> VertexInfo:
        return VertexInfo(
            vid=vid,
            function=self._func[vid],
            context=self._ctx[vid],
            symbol=self._sym[vid],
            line=self._line[vid],
        )

    def symbol(self, vid: int) -> str:
        return self._sym[vid]

    def function(self, vid: int) -> str:
        return self._func[vid]

    def context(self, vid: int) -> int:
        return self._ctx[vid]

    def line(self, vid: int) -> int:
        return self._line[vid]

    def describe(self, vid: int) -> str:
        """Human-readable vertex description for reports."""
        func = self._func[vid] or "<global>"
        return f"{func}::{self._sym[vid]}[ctx {self._ctx[vid]}]"

    # ------------------------------------------------------------------
    # reverse lookup (the §4.4 translation API)
    # ------------------------------------------------------------------
    def vertices_for(self, function: str, symbol: str) -> List[int]:
        """All clones of ``symbol`` in ``function`` (one per context)."""
        return self._by_func_sym.get((function, symbol), [])

    def is_deref_symbol(self, vid: int) -> bool:
        return self._sym[vid].startswith("*")

    def iter_vertices(self) -> Iterator[VertexInfo]:
        for vid in range(self.num_vertices):
            yield self.info(vid)
