"""Recursive-descent parser for MiniC.

Produces the :mod:`repro.frontend.ast` tree.  The grammar is a small,
unambiguous C subset; types are parsed but only pointer-ness is retained
(the analyses are untyped beyond that, §2.2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend import ast
from repro.frontend.lexer import Token, tokenize

TYPE_KEYWORDS = ("int", "char", "long", "void", "struct")

#: sizeof() for MiniC base types (the Size checker compares allocation
#: sizes against these).
TYPE_SIZES = {"int": 4, "char": 1, "long": 8, "void": 1, "struct": 8}


class ParseError(SyntaxError):
    pass


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.current
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            tok = self.current
            want = text if text is not None else kind
            raise ParseError(
                f"line {tok.line}: expected {want!r}, found {tok.text!r}"
            )
        return self.advance()

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse_program(self, module: str = "") -> ast.Program:
        program = ast.Program()
        while not self.check("eof"):
            is_async = bool(self.accept("keyword", "async"))
            is_pointer, line, size = self._parse_type()
            name = self.expect("ident").text
            if self.check("symbol", "("):
                func = self._parse_function(name, is_pointer, line, module)
                func.is_async = is_async
                program.functions.append(func)
            elif is_async:
                raise ParseError(
                    f"line {line}: 'async' applies to function definitions, "
                    f"not to the global variable {name!r}"
                )
            else:
                program.globals.append(
                    ast.Global(
                        name=name, is_pointer=is_pointer, line=line, base_size=size
                    )
                )
                while self.accept("symbol", ","):
                    ptr = bool(self.accept("symbol", "*"))
                    extra = self.expect("ident").text
                    program.globals.append(
                        ast.Global(name=extra, is_pointer=ptr, line=line, base_size=size)
                    )
                self.expect("symbol", ";")
        return program

    def _parse_type(self) -> Tuple[bool, int, int]:
        """Consume a type; returns (is_pointer, line, base_size)."""
        tok = self.current
        if not (tok.kind == "keyword" and tok.text in TYPE_KEYWORDS):
            raise ParseError(f"line {tok.line}: expected a type, found {tok.text!r}")
        self.advance()
        if tok.text == "struct":
            self.expect("ident")  # struct tag
        is_pointer = False
        while self.accept("symbol", "*"):
            is_pointer = True
        return is_pointer, tok.line, TYPE_SIZES[tok.text]

    def _parse_function(
        self, name: str, returns_pointer: bool, line: int, module: str
    ) -> ast.Function:
        self.expect("symbol", "(")
        params: List[str] = []
        pointer_params: List[bool] = []
        param_sizes: List[int] = []
        if not self.check("symbol", ")"):
            if self.check("keyword", "void") and self.tokens[self.pos + 1].text == ")":
                self.advance()
            else:
                while True:
                    ptr, _, size = self._parse_type()
                    params.append(self.expect("ident").text)
                    pointer_params.append(ptr)
                    param_sizes.append(size)
                    if not self.accept("symbol", ","):
                        break
        self.expect("symbol", ")")
        body = self._parse_block()
        return ast.Function(
            name=name,
            params=params,
            pointer_params=pointer_params,
            body=body,
            returns_pointer=returns_pointer,
            module=module,
            line=line,
            param_sizes=param_sizes,
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> List[ast.Stmt]:
        self.expect("symbol", "{")
        stmts: List[ast.Stmt] = []
        while not self.check("symbol", "}"):
            stmts.extend(self._parse_statement())
        self.expect("symbol", "}")
        return stmts

    def _parse_statement(self) -> List[ast.Stmt]:
        tok = self.current
        if tok.kind == "keyword" and tok.text in TYPE_KEYWORDS:
            return self._parse_decl()
        if self.accept("keyword", "return"):
            value = None
            if not self.check("symbol", ";"):
                value = self._parse_expr()
            self.expect("symbol", ";")
            return [ast.Return(line=tok.line, value=value)]
        if self.accept("keyword", "if"):
            self.expect("symbol", "(")
            cond = self._parse_cond()
            self.expect("symbol", ")")
            then_body = self._parse_block()
            else_body: List[ast.Stmt] = []
            if self.accept("keyword", "else"):
                if self.check("keyword", "if"):
                    else_body = self._parse_statement()
                else:
                    else_body = self._parse_block()
            return [
                ast.If(
                    line=tok.line, cond=cond, then_body=then_body, else_body=else_body
                )
            ]
        if self.accept("keyword", "while"):
            self.expect("symbol", "(")
            cond = self._parse_cond()
            self.expect("symbol", ")")
            body = self._parse_block()
            return [ast.While(line=tok.line, cond=cond, body=body)]
        if self.accept("keyword", "for"):
            return self._parse_for(tok.line)
        if self.accept("keyword", "spawn"):
            callee = self.expect("ident").text
            self.expect("symbol", "(")
            args: List[ast.Expr] = []
            if not self.check("symbol", ")"):
                while True:
                    args.append(self._parse_expr())
                    if not self.accept("symbol", ","):
                        break
            self.expect("symbol", ")")
            self.expect("symbol", ";")
            return [ast.Spawn(line=tok.line, callee=callee, args=tuple(args))]
        # assignment or expression statement
        expr = self._parse_expr()
        if self.accept("symbol", "="):
            rhs = self._parse_expr()
            self.expect("symbol", ";")
            return [ast.Assign(line=tok.line, lhs=expr, rhs=rhs)]
        self.expect("symbol", ";")
        return [ast.ExprStmt(line=tok.line, expr=expr)]

    def _parse_for(self, line: int) -> List[ast.Stmt]:
        """``for (init; cond; step) body`` desugars to init + while.

        The lowering is the standard one: the init statement runs first,
        then a while loop on the condition whose body is the original
        body followed by the step.  Flow-insensitive analyses see the
        same statements either way; the checkers see the condition as a
        normal guard.
        """
        self.expect("symbol", "(")
        init: List[ast.Stmt] = []
        if not self.check("symbol", ";"):
            expr = self._parse_expr()
            self.expect("symbol", "=")
            init = [ast.Assign(line=line, lhs=expr, rhs=self._parse_expr())]
        self.expect("symbol", ";")
        if self.check("symbol", ";"):
            cond = ast.Cond(expr=ast.IntConst(1))
        else:
            cond = self._parse_cond()
        self.expect("symbol", ";")
        step: List[ast.Stmt] = []
        if not self.check("symbol", ")"):
            expr = self._parse_expr()
            if self.accept("symbol", "="):
                step = [ast.Assign(line=line, lhs=expr, rhs=self._parse_expr())]
            else:
                step = [ast.ExprStmt(line=line, expr=expr)]
        self.expect("symbol", ")")
        body = self._parse_block()
        return init + [ast.While(line=line, cond=cond, body=body + step)]

    def _parse_decl(self) -> List[ast.Stmt]:
        line = self.current.line
        base_is_pointer, _, base_size = self._parse_type()
        decls: List[ast.Stmt] = []
        while True:
            is_pointer = base_is_pointer
            while self.accept("symbol", "*"):
                is_pointer = True
            name = self.expect("ident").text
            if self.accept("symbol", "["):  # array declarator: decays to pointer
                if self.current.kind == "number":
                    self.advance()
                self.expect("symbol", "]")
                is_pointer = True
            init = None
            if self.accept("symbol", "="):
                init = self._parse_expr()
            decls.append(
                ast.Decl(
                    line=line,
                    name=name,
                    is_pointer=is_pointer,
                    init=init,
                    base_size=base_size,
                )
            )
            if not self.accept("symbol", ","):
                break
        self.expect("symbol", ";")
        return decls

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------
    def _parse_cond(self) -> ast.Cond:
        """Parse a guard and normalize pointer NULL tests (see ast.Cond)."""
        negated = bool(self.accept("symbol", "!"))
        expr = self._parse_expr()
        if self.check("symbol", "==") or self.check("symbol", "!="):
            op = self.advance().text
            right = self._parse_expr()
            full = ast.BinOp(op=op, left=expr, right=right)
            if isinstance(expr, ast.Var) and isinstance(right, ast.Null):
                nonnull = (op == "!=") != negated
                return ast.Cond(expr=full, var=expr.name, nonnull_when_true=nonnull)
            return ast.Cond(expr=full)
        # Ordered comparisons were folded into the expression by
        # _parse_expr; a comparison against a bound is a range check on
        # the compared variable (Range checker).
        if isinstance(expr, ast.BinOp) and expr.op in ("<", ">", "<=", ">="):
            if isinstance(expr.left, ast.Var):
                return ast.Cond(expr=expr, range_var=expr.left.name)
            if isinstance(expr.right, ast.Var):
                return ast.Cond(expr=expr, range_var=expr.right.name)
            return ast.Cond(expr=expr)
        if isinstance(expr, ast.Var):
            return ast.Cond(expr=expr, var=expr.name, nonnull_when_true=not negated)
        return ast.Cond(expr=expr)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        left = self._parse_unary()
        while self.current.kind == "symbol" and self.current.text in (
            "+",
            "-",
            "/",
            "%",
            "<",
            ">",
            "<=",
            ">=",
            "&&",
            "||",
        ):
            op = self.advance().text
            right = self._parse_unary()
            left = ast.BinOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.check("keyword", "await"):
            tok = self.advance()
            operand = self._parse_unary()
            if not isinstance(operand, ast.Call):
                raise ParseError(
                    f"line {tok.line}: 'await' must be applied to a call"
                )
            return ast.Call(
                callee=operand.callee, args=operand.args, awaited=True
            )
        if self.accept("symbol", "*"):
            return ast.Deref(operand=self._parse_unary())
        if self.accept("symbol", "&"):
            name = self.expect("ident").text
            return ast.AddrOf(operand=ast.Var(name))
        if self.accept("symbol", "("):
            expr = self._parse_expr()
            self.expect("symbol", ")")
            return self._parse_postfix(expr)
        if self.accept("keyword", "NULL"):
            return ast.Null()
        tok = self.current
        if tok.kind == "number":
            self.advance()
            return ast.IntConst(int(tok.text))
        if tok.kind == "ident":
            self.advance()
            if tok.text == "malloc" and self.check("symbol", "("):
                self.expect("symbol", "(")
                size: Optional[int] = None
                while not self.check("symbol", ")"):
                    arg = self._parse_expr()
                    if size is None and isinstance(arg, ast.IntConst):
                        size = arg.value  # literal byte count (Size checker)
                    if not self.accept("symbol", ","):
                        break
                self.expect("symbol", ")")
                return ast.Malloc(size=size)
            if self.check("symbol", "("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.check("symbol", ")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept("symbol", ","):
                            break
                self.expect("symbol", ")")
                return self._parse_postfix(
                    ast.Call(callee=tok.text, args=tuple(args))
                )
            return self._parse_postfix(ast.Var(tok.text))
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")

    def _parse_postfix(self, expr: ast.Expr) -> ast.Expr:
        """Field and array accesses lower to dereferences (offsets ignored)."""
        while True:
            if self.accept("symbol", "->"):
                self.expect("ident")  # field name, ignored per §2.2
                expr = ast.Deref(operand=expr)
            elif self.accept("symbol", "."):
                self.expect("ident")  # a.f handled as a
            elif self.accept("symbol", "["):
                index = self._parse_expr()
                self.expect("symbol", "]")
                # a[i] reads like *(a) with the index recorded via BinOp so
                # the Range checker can see it; the pointer graph treats it
                # as a plain dereference.
                expr = ast.Deref(operand=ast.BinOp(op="[]", left=expr, right=index))
            else:
                return expr


def parse(source: str, module: str = "") -> ast.Program:
    """Parse MiniC ``source`` into a :class:`repro.frontend.ast.Program`."""
    return Parser(tokenize(source)).parse_program(module)


def parse_files(named_sources: List[Tuple[str, str]]) -> ast.Program:
    """Parse and merge ``(module_name, source)`` pairs into one program."""
    program = ast.Program()
    for module, source in named_sources:
        program = program.merged_with(parse(source, module=module))
    return program
