"""Tokenizer for MiniC."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = frozenset(
    {
        "int",
        "char",
        "long",
        "void",
        "struct",
        "if",
        "else",
        "while",
        "for",
        "return",
        "spawn",
        "async",
        "await",
        "NULL",
    }
)

SYMBOLS = (
    "==",
    "!=",
    "<=",
    ">=",
    "->",
    "&&",
    "||",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "=",
    "*",
    "&",
    "!",
    "<",
    ">",
    "+",
    "-",
    "/",
    "%",
    ".",
)


class LexError(SyntaxError):
    pass


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "keyword" | "symbol" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC source.  ``//`` and ``/* */`` comments are skipped."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"line {line}: unterminated block comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if c.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("number", source[i:j], line))
            i = j
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("symbol", sym, line))
                i += len(sym)
                break
        else:
            raise LexError(f"line {line}: unexpected character {c!r}")
    tokens.append(Token("eof", "", line))
    return tokens
