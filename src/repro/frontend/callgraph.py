"""Call-graph construction and SCC collapsing.

Context sensitivity is achieved by bottom-up inlining over the call graph
(§3).  Recursion would make cloning diverge, so — following the standard
treatment the paper cites — strongly connected components are computed
and each SCC is treated as one unit, instantiated once per incoming call
and wired context-insensitively inside.

Indirect calls (through function pointers) cannot be resolved before the
pointer analysis runs; they are collected separately and consumed by the
Graspan-augmented Block checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.frontend.lower import LoweredProgram


@dataclass
class CallSite:
    caller: str
    callee: str
    line: int
    spawned: bool = False  # True for `spawn f(args);` thread-creation sites


@dataclass
class IndirectCallSite:
    caller: str
    pointer_var: str
    line: int


@dataclass
class CallGraph:
    """Direct-call edges plus the SCC condensation."""

    callees: Dict[str, List[CallSite]]  # caller -> direct call sites
    indirect_sites: List[IndirectCallSite]
    external_callees: Set[str]  # called but not defined (externals)
    scc_of: Dict[str, int]  # function -> SCC id
    sccs: List[List[str]]  # SCC id -> member functions
    topo_order: List[int]  # SCC ids, callees before callers (bottom-up)

    def roots(self) -> List[str]:
        """Functions never directly called: the inlining entry points."""
        called = {site.callee for sites in self.callees.values() for site in sites}
        return [f for f in self.callees if f not in called]

    def spawn_targets(self) -> Set[str]:
        """Functions used as the body of a ``spawn`` thread-creation site."""
        return {
            site.callee
            for sites in self.callees.values()
            for site in sites
            if site.spawned
        }

    def is_recursive_call(self, caller: str, callee: str) -> bool:
        """True when the call stays inside one SCC (not cloned)."""
        return self.scc_of[caller] == self.scc_of[callee]

    def scc_members(self, function: str) -> List[str]:
        return self.sccs[self.scc_of[function]]


def build_callgraph(program: LoweredProgram) -> CallGraph:
    """Extract direct/indirect call sites and compute the SCC condensation."""
    defined = set(program.functions)
    callees: Dict[str, List[CallSite]] = {name: [] for name in program.functions}
    indirect: List[IndirectCallSite] = []
    external: Set[str] = set()

    for name, func in program.functions.items():
        local_vars = set(func.params) | set(func.locals)
        for stmt in func.stmts:
            if stmt.kind not in ("call", "spawn"):
                continue
            target = stmt.callee
            if target in defined:
                callees[name].append(
                    CallSite(name, target, stmt.line, spawned=stmt.kind == "spawn")
                )
            elif stmt.kind == "spawn":
                external.add(target)  # spawn of an undefined thread body
            elif target in local_vars or target in program.global_vars:
                indirect.append(IndirectCallSite(name, target, stmt.line))
            else:
                external.add(target)

    scc_of, sccs = _tarjan(defined, callees)
    topo = _topological_sccs(callees, scc_of, len(sccs))
    return CallGraph(
        callees=callees,
        indirect_sites=indirect,
        external_callees=external,
        scc_of=scc_of,
        sccs=sccs,
        topo_order=topo,
    )


def _tarjan(
    nodes: Set[str], callees: Dict[str, List[CallSite]]
) -> Tuple[Dict[str, int], List[List[str]]]:
    """Iterative Tarjan SCC (no recursion: call chains can be deep)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    scc_of: Dict[str, int] = {}
    sccs: List[List[str]] = []
    counter = [0]

    for root in sorted(nodes):
        if root in index:
            continue
        # Each frame: (node, iterator over successor names).
        work = [(root, iter([s.callee for s in callees.get(root, [])]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append(
                        (succ, iter([s.callee for s in callees.get(succ, [])]))
                    )
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                members: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == node:
                        break
                scc_id = len(sccs)
                sccs.append(members)
                for member in members:
                    scc_of[member] = scc_id
    return scc_of, sccs


def _topological_sccs(
    callees: Dict[str, List[CallSite]],
    scc_of: Dict[str, int],
    num_sccs: int,
) -> List[int]:
    """SCC ids ordered callees-first (reverse-topological over calls)."""
    out: Dict[int, Set[int]] = {i: set() for i in range(num_sccs)}
    indegree = [0] * num_sccs
    for caller, sites in callees.items():
        for site in sites:
            a, b = scc_of[caller], scc_of[site.callee]
            if a != b and b not in out[a]:
                out[a].add(b)
                indegree[b] += 1
    # Kahn's algorithm from callers down, then reverse for bottom-up order.
    ready = sorted(i for i in range(num_sccs) if indegree[i] == 0)
    order: List[int] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in sorted(out[node]):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    order.reverse()
    return order
