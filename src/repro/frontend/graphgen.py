"""Program-graph generation with full context sensitivity (§3).

Two stages:

1. **Templates** — each lowered function is summarized once as a
   :class:`FunctionTemplate`: its local symbols, its intra-procedural
   edges (assignment ``A``, dereference ``D``, allocation ``M``, NULL
   source ``N``, user-data source ``U``, arithmetic taint flow ``TF``),
   and its call sites.

2. **Instantiation** — starting from the call-graph roots, every template
   is cloned once per calling context: each direct call site inlines its
   callee by instantiating it in a fresh child context and wiring actual
   arguments to formal parameters (``A`` edges) and return variables to
   the call's left-hand side.  Functions in one SCC are instantiated as a
   group and wired context-insensitively inside (recursion, §3).  Globals,
   allocation-free specials (``NULL``, ``USER``) and function objects
   live in the root context and are shared by all clones.

The result carries the edge arrays for building the analysis graphs, the
:class:`~repro.frontend.namer.VertexNamer` for translating results back
to source, and the inline count reported in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.frontend.callgraph import CallGraph, build_callgraph
from repro.frontend.lower import LoweredFunction, LoweredProgram
from repro.frontend.namer import VertexNamer

# Edge kinds emitted by instantiation.
KIND_M = "M"  # allocation
KIND_A = "A"  # assignment / value flow
KIND_D = "D"  # dereference
KIND_N = "N"  # NULL source
KIND_U = "U"  # user-data (taint) source
KIND_TF = "TF"  # taint-only flow (through arithmetic)
KIND_TS = "TS"  # untrusted-input source (``input()``, taint grammar)

#: Special shared symbols (root context).
SYM_NULL = "NULL"
SYM_USER = "USER"
SYM_TAINT = "TAINT"


class InlineBudgetExceeded(RuntimeError):
    """Raised when cloning would exceed the configured inline budget."""


@dataclass
class TemplateEdge:
    kind: str
    src: str
    dst: str
    line: int = 0


@dataclass
class TemplateCall:
    callee: str
    args: Tuple[str, ...]
    lhs: Optional[str]
    line: int
    spawned: bool = False  # thread-creation site (`spawn f(args);`)


@dataclass
class TemplateIndirectCall:
    pointer_sym: str
    args: Tuple[str, ...]
    lhs: Optional[str]
    line: int


@dataclass
class FunctionTemplate:
    """The reusable per-function summary instantiated per context."""

    name: str
    params: List[str]
    local_symbols: List[str]  # symbols needing per-context vertices
    edges: List[TemplateEdge]
    calls: List[TemplateCall]
    indirect_calls: List[TemplateIndirectCall]
    return_syms: List[str]
    alloc_sizes: Dict[str, Optional[int]] = field(default_factory=dict)
    is_async: bool = False  # declared ``async`` (async-misuse analysis)


@dataclass(frozen=True)
class ContextCallSite:
    """The call site that created one child context (for summary-based
    interprocedural propagation, e.g. the race detector's locksets)."""

    caller: str
    line: int
    callee: str
    spawned: bool


@dataclass
class IndirectCallInstance:
    """One cloned indirect call site, for the Block checker."""

    caller: str
    context: int
    pointer_vid: int
    line: int


@dataclass
class ProgramGraphs:
    """Everything graph generation produces."""

    namer: VertexNamer
    edges_src: np.ndarray
    edges_dst: np.ndarray
    edges_kind: np.ndarray  # indices into kind_names
    kind_names: Tuple[str, ...]
    inline_count: int
    indirect_call_instances: List[IndirectCallInstance]
    callgraph: CallGraph
    lowered: LoweredProgram
    templates: Dict[str, FunctionTemplate] = field(default_factory=dict)
    #: Contexts created by a `spawn` site: the roots of spawned-thread
    #: subtrees in the context tree (race detector's thread boundaries).
    spawn_contexts: Set[int] = field(default_factory=set)
    #: Contexts whose clone executes inside an async function's dynamic
    #: extent (no spawn boundary crossed): the async-misuse checker's
    #: evidence that a call runs on the event loop.
    async_contexts: Set[int] = field(default_factory=set)
    #: function name -> every context it was instantiated in.
    instance_contexts: Dict[str, Set[int]] = field(default_factory=dict)
    #: child context -> the call site that created it.
    context_call_sites: Dict[int, ContextCallSite] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        return self.namer.num_vertices

    @property
    def num_edges(self) -> int:
        return len(self.edges_src)

    def edges_of_kind(self, *kinds: str) -> Tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays of every edge whose kind is in ``kinds``."""
        wanted = [self.kind_names.index(k) for k in kinds]
        mask = np.isin(self.edges_kind, wanted)
        return self.edges_src[mask], self.edges_dst[mask]


# ---------------------------------------------------------------------------
# stage 1: templates
# ---------------------------------------------------------------------------


def _is_global_symbol(sym: str) -> bool:
    base = sym.lstrip("*&")
    return (
        base.startswith("@")
        or base in (SYM_NULL, SYM_USER, SYM_TAINT)
        or base.startswith("fn:")
    )


class _TemplateBuilder:
    def __init__(
        self,
        func: LoweredFunction,
        global_vars: Set[str],
        function_names: Set[str],
    ) -> None:
        self.func = func
        self.global_vars = global_vars
        self.function_names = function_names
        self.local_names = set(func.params) | set(func.locals)
        self.symbols: List[str] = []
        self._seen_symbols: Set[str] = set()
        self.edges: List[TemplateEdge] = []
        self.calls: List[TemplateCall] = []
        self.indirect_calls: List[TemplateIndirectCall] = []
        self.alloc_sizes: Dict[str, Optional[int]] = {}
        self._alloc_counter = 0

    def _resolve(self, name: str) -> str:
        """Variable name -> symbol ('@x' marks globals)."""
        if name in self.local_names:
            return self._local(name)
        # Undeclared names are implicit globals (extern data).
        self.global_vars.add(name)
        return "@" + name

    def _local(self, sym: str) -> str:
        if sym not in self._seen_symbols:
            self._seen_symbols.add(sym)
            self.symbols.append(sym)
        return sym

    def _deref(self, base_sym: str) -> str:
        sym = "*" + base_sym
        if not _is_global_symbol(sym):
            self._local(sym)
        return sym

    def _addrof(self, base_sym: str) -> str:
        sym = "&" + base_sym
        if not _is_global_symbol(sym):
            self._local(sym)
        return sym

    def _edge(self, kind: str, src: str, dst: str, line: int) -> None:
        self.edges.append(TemplateEdge(kind, src, dst, line))

    def build(self) -> FunctionTemplate:
        for param in self.func.params:
            self._local(param)
        for stmt in self.func.stmts:
            self._build_stmt(stmt)
        return FunctionTemplate(
            name=self.func.name,
            params=list(self.func.params),
            local_symbols=self.symbols,
            edges=self.edges,
            calls=self.calls,
            indirect_calls=self.indirect_calls,
            return_syms=[self._resolve(v) for v in self.func.return_vars()],
            alloc_sizes=self.alloc_sizes,
            is_async=self.func.is_async,
        )

    def _build_stmt(self, stmt) -> None:
        kind, line = stmt.kind, stmt.line
        if kind == "copy":
            self._edge(KIND_A, self._resolve(stmt.rhs), self._resolve(stmt.lhs), line)
        elif kind == "load":
            base = self._resolve(stmt.rhs)
            deref = self._deref(base)
            self._edge(KIND_D, base, deref, line)
            self._edge(KIND_A, deref, self._resolve(stmt.lhs), line)
        elif kind == "store":
            base = self._resolve(stmt.lhs)
            deref = self._deref(base)
            self._edge(KIND_D, base, deref, line)
            self._edge(KIND_A, self._resolve(stmt.rhs), deref, line)
        elif kind == "addrof":
            base = self._resolve(stmt.rhs)
            addr = self._addrof(base)
            self._edge(KIND_D, addr, base, line)
            self._edge(KIND_A, addr, self._resolve(stmt.lhs), line)
        elif kind == "alloc":
            self._alloc_counter += 1
            site = self._local(f"alloc@{line}.{self._alloc_counter}")
            self.alloc_sizes[site] = stmt.size
            self._edge(KIND_M, site, self._resolve(stmt.lhs), line)
        elif kind == "null":
            self._edge(KIND_N, SYM_NULL, self._resolve(stmt.lhs), line)
        elif kind == "funcref":
            self._edge(KIND_M, f"fn:{stmt.callee}", self._resolve(stmt.lhs), line)
        elif kind == "binop":
            lhs = self._resolve(stmt.lhs)
            for operand in stmt.operands:
                self._edge(KIND_TF, self._resolve(operand), lhs, line)
        elif kind == "call":
            self._build_call(stmt)
        elif kind == "spawn":
            self._build_call(stmt, spawned=True)
        elif kind == "sanitize":
            # The taint grammar's sanitization barrier: deliberately NO
            # flow edge from rhs to lhs, so no TT path crosses a
            # cleanser.  Both sides still get vertices (the taint client
            # resolves sink arguments by name).
            if stmt.rhs:
                self._resolve(stmt.rhs)
            if stmt.lhs:
                self._resolve(stmt.lhs)
        elif kind == "sink":
            # Sinks consume values but produce none: no edges; resolve
            # the arguments so every sink variable has a vertex.
            for arg in stmt.args:
                if arg:
                    self._resolve(arg)
        # test / free / lock / unlock / const / return: no graph edges.

    def _build_call(self, stmt, spawned: bool = False) -> None:
        args = tuple(self._resolve(a) for a in stmt.args)
        lhs = self._resolve(stmt.lhs) if stmt.lhs else None
        callee = stmt.callee
        if callee in self.function_names:
            self.calls.append(
                TemplateCall(callee, args, lhs, stmt.line, spawned=spawned)
            )
        elif spawned:
            pass  # spawn of an undefined thread body: opaque external
        elif callee in self.local_names or callee in self.global_vars:
            self.indirect_calls.append(
                TemplateIndirectCall(self._resolve(callee), args, lhs, stmt.line)
            )
        elif callee == "get_user" and lhs is not None:
            self.edges.append(TemplateEdge(KIND_U, SYM_USER, lhs, stmt.line))
        elif callee == "input" and lhs is not None:
            # Untrusted-input source: the taint grammar's TS terminal.
            self.edges.append(TemplateEdge(KIND_TS, SYM_TAINT, lhs, stmt.line))
        # Other externals: opaque (documented in DESIGN.md).


def build_templates(
    lowered: LoweredProgram,
) -> Tuple[Dict[str, FunctionTemplate], Set[str]]:
    """Summarize every lowered function; returns (templates, global vars)."""
    global_vars: Set[str] = set(lowered.global_vars)
    function_names = set(lowered.functions)
    templates = {
        name: _TemplateBuilder(func, global_vars, function_names).build()
        for name, func in lowered.functions.items()
    }
    return templates, global_vars


# ---------------------------------------------------------------------------
# stage 2: instantiation
# ---------------------------------------------------------------------------


class _Instantiator:
    def __init__(
        self,
        templates: Dict[str, FunctionTemplate],
        callgraph: CallGraph,
        max_inlines: int,
        context_depth: Optional[int] = None,
    ) -> None:
        self.templates = templates
        self.callgraph = callgraph
        self.max_inlines = max_inlines
        self.context_depth = context_depth
        self.namer = VertexNamer()
        self.src: List[int] = []
        self.dst: List[int] = []
        self.kind: List[int] = []
        self.kind_names: Tuple[str, ...] = (
            KIND_M,
            KIND_A,
            KIND_D,
            KIND_N,
            KIND_U,
            KIND_TF,
            KIND_TS,
        )
        self._kind_id = {name: i for i, name in enumerate(self.kind_names)}
        self._globals: Dict[str, int] = {}
        self.inline_count = 0
        self.indirect_instances: List[IndirectCallInstance] = []
        self._ever_instantiated: Set[str] = set()
        self.spawn_contexts: Set[int] = set()
        self.async_contexts: Set[int] = set()
        self.instance_contexts: Dict[str, Set[int]] = {}
        self.context_call_sites: Dict[int, ContextCallSite] = {}
        # Bounded context sensitivity: SCC groups deeper than
        # context_depth share one context-insensitive instance.
        self._shared_instances: Dict[Tuple[str, ...], Dict[str, Dict[str, int]]] = {}

    # -- vertex helpers -------------------------------------------------
    def _global_vid(self, sym: str) -> int:
        vid = self._globals.get(sym)
        if vid is None:
            vid = self.namer.new_vertex("", 0, sym)
            self._globals[sym] = vid
        return vid

    def _emit(self, kind: str, src_vid: int, dst_vid: int) -> None:
        self.src.append(src_vid)
        self.dst.append(dst_vid)
        self.kind.append(self._kind_id[kind])

    # -- instantiation --------------------------------------------------
    def run(self) -> None:
        instantiated_roots: Set[str] = set()
        for root in sorted(self.callgraph.roots()):
            scc = tuple(sorted(self.callgraph.scc_members(root)))
            if scc[0] in instantiated_roots:
                continue  # two roots in the same SCC share one instance
            instantiated_roots.update(scc)
            self._instantiate_group(scc, ctx=0)
        # Cycles unreachable from any root (mutual recursion with no
        # outside caller) still need one instance each.
        for name in sorted(self.templates):
            if name not in self._ever_instantiated:
                scc = tuple(sorted(self.callgraph.scc_members(name)))
                self._instantiate_group(scc, ctx=0)

    def _instantiate_group(
        self,
        scc: Tuple[str, ...],
        ctx: int,
    ) -> Dict[str, Dict[str, int]]:
        """Instantiate every function of one SCC in context ``ctx``.

        Returns the per-function symbol tables so callers can wire
        arguments and returns.  Work on nested (out-of-SCC) calls is done
        iteratively with an explicit stack — call chains in systems code
        are deep enough to overflow Python's recursion limit.

        With a bounded ``context_depth`` k (§3: "the developer can easily
        control the degree of context sensitivity"), call chains longer
        than k stop cloning: each SCC gets one *shared* instance that all
        deeper call sites bind into, i.e. the analysis becomes context-
        insensitive past depth k.  ``context_depth=None`` is full context
        sensitivity (the paper's configuration).
        """
        # stack items: (scc members, ctx, binding thunk args, depth)
        results: Dict[str, Dict[str, int]] = {}
        stack: List[Tuple[Tuple[str, ...], int, Optional[Tuple], int]] = [
            (scc, ctx, None, 0)
        ]
        while stack:
            members, group_ctx, binding, depth = stack.pop()
            beyond_limit = (
                self.context_depth is not None
                and binding is not None
                and depth > self.context_depth
            )
            if beyond_limit and members in self._shared_instances:
                self._wire_binding(binding, self._shared_instances[members])
                continue
            if binding is not None:
                self.inline_count += len(members)
                if self.inline_count > self.max_inlines:
                    raise InlineBudgetExceeded(
                        f"inline budget {self.max_inlines} exceeded; "
                        "the call graph fans out too aggressively"
                    )
            symtabs = self._instantiate_members(members, group_ctx)
            if beyond_limit:
                self._shared_instances[members] = symtabs
            if binding is None:
                results = symtabs
            else:
                self._wire_binding(binding, symtabs)
            # Out-of-SCC calls become new groups in child contexts.
            member_set = set(members)
            for fname in members:
                template = self.templates[fname]
                symtab = symtabs[fname]
                for call in template.calls:
                    if call.callee in member_set:
                        continue  # intra-SCC, already wired
                    callee_scc = tuple(
                        sorted(self.callgraph.scc_members(call.callee))
                    )
                    arrow = "~>" if call.spawned else "->"
                    child_ctx = self.namer.new_context(
                        group_ctx, f"{fname}:{call.line}{arrow}{call.callee}"
                    )
                    self.context_call_sites[child_ctx] = ContextCallSite(
                        caller=fname,
                        line=call.line,
                        callee=call.callee,
                        spawned=call.spawned,
                    )
                    if call.spawned:
                        self.spawn_contexts.add(child_ctx)
                    # Async extent: the callee's clone runs in an async
                    # context when the callee is itself async, or the
                    # caller's extent was async and no spawn boundary
                    # (a new thread/task) is crossed.
                    if self.templates[call.callee].is_async or (
                        not call.spawned
                        and (
                            self.templates[fname].is_async
                            or group_ctx in self.async_contexts
                        )
                    ):
                        self.async_contexts.add(child_ctx)
                    arg_vids = tuple(self._sym_vid(a, symtab) for a in call.args)
                    lhs_vid = (
                        self._sym_vid(call.lhs, symtab)
                        if call.lhs is not None
                        else None
                    )
                    stack.append(
                        (
                            callee_scc,
                            child_ctx,
                            (call.callee, arg_vids, lhs_vid),
                            depth + 1,
                        )
                    )
        return results

    def _instantiate_members(
        self, members: Tuple[str, ...], ctx: int
    ) -> Dict[str, Dict[str, int]]:
        """Create vertices and intra edges for all SCC members in ``ctx``."""
        symtabs: Dict[str, Dict[str, int]] = {}
        self._ever_instantiated.update(members)
        for fname in members:
            template = self.templates[fname]
            symtab: Dict[str, int] = {}
            for sym in template.local_symbols:
                symtab[sym] = self.namer.new_vertex(fname, ctx, sym)
            symtabs[fname] = symtab
            self.instance_contexts.setdefault(fname, set()).add(ctx)
        for fname in members:
            template = self.templates[fname]
            symtab = symtabs[fname]
            for edge in template.edges:
                self._emit(
                    edge.kind,
                    self._sym_vid(edge.src, symtab),
                    self._sym_vid(edge.dst, symtab),
                )
            for icall in template.indirect_calls:
                self.indirect_instances.append(
                    IndirectCallInstance(
                        caller=fname,
                        context=ctx,
                        pointer_vid=self._sym_vid(icall.pointer_sym, symtab),
                        line=icall.line,
                    )
                )
            # Intra-SCC calls: wired context-insensitively to this instance.
            member_set = set(members)
            for call in template.calls:
                if call.callee not in member_set:
                    continue
                callee_tab = symtabs[call.callee]
                callee_template = self.templates[call.callee]
                self._wire_args_returns(
                    callee_template,
                    callee_tab,
                    tuple(self._sym_vid(a, symtab) for a in call.args),
                    self._sym_vid(call.lhs, symtab) if call.lhs else None,
                )
        return symtabs

    def _wire_binding(
        self, binding: Tuple, symtabs: Dict[str, Dict[str, int]]
    ) -> None:
        callee, arg_vids, lhs_vid = binding
        self._wire_args_returns(
            self.templates[callee], symtabs[callee], arg_vids, lhs_vid
        )

    def _wire_args_returns(
        self,
        callee_template: FunctionTemplate,
        callee_tab: Dict[str, int],
        arg_vids: Tuple[int, ...],
        lhs_vid: Optional[int],
    ) -> None:
        """A edges: actuals -> formals, returns -> call LHS (§3)."""
        for formal, actual_vid in zip(callee_template.params, arg_vids):
            self._emit(KIND_A, actual_vid, callee_tab[formal])
        if lhs_vid is not None:
            for ret_sym in callee_template.return_syms:
                self._emit(KIND_A, self._sym_vid(ret_sym, callee_tab), lhs_vid)

    def _sym_vid(self, sym: str, symtab: Dict[str, int]) -> int:
        """Resolve a template symbol to a vertex id in one instance."""
        vid = symtab.get(sym)
        if vid is not None:
            return vid
        if _is_global_symbol(sym):
            return self._global_vid(sym)
        # Local deref/addrof chains over globals bottom out here; any
        # remaining local symbol missing from the table is a bug.
        raise KeyError(f"unresolved symbol {sym!r}")


def generate_graphs(
    lowered: LoweredProgram,
    max_inlines: int = 5_000_000,
    context_depth: Optional[int] = None,
) -> ProgramGraphs:
    """Run both stages: templates, then context-sensitive instantiation.

    ``context_depth`` bounds the cloning depth (None = fully
    context-sensitive, 0 = context-insensitive; see §3).
    """
    callgraph = build_callgraph(lowered)
    templates, _ = build_templates(lowered)
    inst = _Instantiator(templates, callgraph, max_inlines, context_depth)
    inst.run()
    return ProgramGraphs(
        namer=inst.namer,
        edges_src=np.asarray(inst.src, dtype=np.int64),
        edges_dst=np.asarray(inst.dst, dtype=np.int64),
        edges_kind=np.asarray(inst.kind, dtype=np.int64),
        kind_names=inst.kind_names,
        inline_count=inst.inline_count,
        indirect_call_instances=inst.indirect_instances,
        callgraph=callgraph,
        lowered=lowered,
        templates=templates,
        spawn_contexts=inst.spawn_contexts,
        async_contexts=inst.async_contexts,
        instance_contexts=inst.instance_contexts,
        context_call_sites=inst.context_call_sites,
    )
