"""The MiniC compiler frontend: source → context-sensitive program graphs.

Pipeline (the "generating graph" task of Graspan's programming model, §3):

1. :func:`repro.frontend.parser.parse` — MiniC source → AST
2. :func:`repro.frontend.lower.lower_program` — AST → three-address form
3. :func:`repro.frontend.graphgen.generate_graphs` — call graph, SCC
   collapse, context-sensitive inlining → labeled edge arrays + namer
4. :func:`repro.frontend.graphs.pointer_graph` /
   :func:`repro.frontend.graphs.dataflow_graph` — Graspan input graphs

:func:`compile_program` runs 1-3 in one call.
"""

from repro.frontend import ast
from repro.frontend.callgraph import (
    CallGraph,
    CallSite,
    IndirectCallSite,
    build_callgraph,
)
from repro.frontend.graphgen import (
    InlineBudgetExceeded,
    ProgramGraphs,
    generate_graphs,
)
from repro.frontend.graphs import dataflow_graph, pointer_graph, taint_graph
from repro.frontend.lexer import LexError, Token, tokenize
from repro.frontend.lower import (
    Guard,
    LStmt,
    LoweredFunction,
    LoweredProgram,
    lower_program,
)
from repro.frontend.namer import VertexInfo, VertexNamer
from repro.frontend.parser import ParseError, parse, parse_files


def compile_program(
    source,
    module: str = "",
    max_inlines: int = 5_000_000,
    context_depth=None,
):
    """Parse, lower, and generate graphs for MiniC source.

    ``source`` is either one source string or a list of
    ``(module_name, source)`` pairs.  ``context_depth`` bounds the
    inlining depth (None = full context sensitivity, 0 = context-
    insensitive).  Returns :class:`ProgramGraphs`.
    """
    if isinstance(source, str):
        program = parse(source, module=module)
    else:
        program = parse_files(list(source))
    lowered = lower_program(program)
    return generate_graphs(
        lowered, max_inlines=max_inlines, context_depth=context_depth
    )


__all__ = [
    "ast",
    "CallGraph",
    "CallSite",
    "IndirectCallSite",
    "build_callgraph",
    "InlineBudgetExceeded",
    "ProgramGraphs",
    "generate_graphs",
    "pointer_graph",
    "dataflow_graph",
    "taint_graph",
    "LexError",
    "Token",
    "tokenize",
    "Guard",
    "LStmt",
    "LoweredFunction",
    "LoweredProgram",
    "lower_program",
    "VertexInfo",
    "VertexNamer",
    "ParseError",
    "parse",
    "parse_files",
    "compile_program",
]
