"""Assemble analysis-specific Graspan input graphs from generated edges.

The pointer/alias graph carries ``M``/``A``/``D`` edges plus their
explicit inverses (§3: "for each edge from a to b labeled X, we create
and add to the graph an edge from b to a labeled X-bar").

The dataflow graph (NULL propagation, §5 — and its taint twin for the
Range checker) is built *after* the pointer analysis: its ``DF`` edges
are the assignment edges plus bridges between aliased dereference
expressions, so NULL (or user data) flows through the heap exactly where
the pointer analysis proved stores and loads may touch the same cell.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.frontend.graphgen import (
    KIND_A,
    KIND_D,
    KIND_M,
    KIND_N,
    KIND_TF,
    KIND_TS,
    KIND_U,
    ProgramGraphs,
)
from repro.graph.graph import MemGraph
from repro.grammar.builtin import (
    LABEL_A,
    LABEL_A_BAR,
    LABEL_D,
    LABEL_D_BAR,
    LABEL_DF,
    LABEL_M,
    LABEL_M_BAR,
    LABEL_N,
    LABEL_TD,
    LABEL_TS,
)

POINTER_LABELS = (
    LABEL_M,
    LABEL_A,
    LABEL_D,
    LABEL_M_BAR,
    LABEL_A_BAR,
    LABEL_D_BAR,
)

DATAFLOW_LABELS = (LABEL_N, LABEL_DF)

TAINT_LABELS = (LABEL_TS, LABEL_TD)


def pointer_graph(pg: ProgramGraphs) -> MemGraph:
    """The pointer/alias analysis input graph, inverse edges included."""
    pieces_src: List[np.ndarray] = []
    pieces_dst: List[np.ndarray] = []
    pieces_lab: List[np.ndarray] = []
    label_id = {name: i for i, name in enumerate(POINTER_LABELS)}
    for kind, bar in ((KIND_M, LABEL_M_BAR), (KIND_A, LABEL_A_BAR), (KIND_D, LABEL_D_BAR)):
        src, dst = pg.edges_of_kind(kind)
        if len(src) == 0:
            continue
        pieces_src.append(src)
        pieces_dst.append(dst)
        pieces_lab.append(np.full(len(src), label_id[kind], dtype=np.int64))
        # inverse ("bar") edges
        pieces_src.append(dst)
        pieces_dst.append(src)
        pieces_lab.append(np.full(len(src), label_id[bar], dtype=np.int64))
    if pieces_src:
        src = np.concatenate(pieces_src)
        dst = np.concatenate(pieces_dst)
        lab = np.concatenate(pieces_lab)
    else:
        src = dst = lab = np.empty(0, dtype=np.int64)
    return MemGraph.from_arrays(
        src, dst, lab, num_vertices=pg.num_vertices, label_names=POINTER_LABELS
    )


def dataflow_graph(
    pg: ProgramGraphs,
    alias_pairs: Iterable[Tuple[int, int]] = (),
    taint: bool = False,
) -> MemGraph:
    """The source-tracking dataflow graph.

    ``taint=False`` tracks NULL: sources are ``N`` edges, flow is
    assignments.  ``taint=True`` tracks user data (Range checker):
    sources are ``U`` edges and flow additionally crosses arithmetic
    (``TF`` edges) — ``p + 1`` is still NULL-free but ``n + 1`` is still
    user-controlled.

    ``alias_pairs`` are (deref-vertex, deref-vertex) pairs from the
    pointer analysis; each contributes DF edges in both directions.
    """
    label_id = {name: i for i, name in enumerate(DATAFLOW_LABELS)}
    pieces: List[Tuple[np.ndarray, np.ndarray, int]] = []

    source_kind = KIND_U if taint else KIND_N
    src, dst = pg.edges_of_kind(source_kind)
    pieces.append((src, dst, label_id[LABEL_N]))

    flow_kinds = (KIND_A, KIND_TF) if taint else (KIND_A,)
    src, dst = pg.edges_of_kind(*flow_kinds)
    pieces.append((src, dst, label_id[LABEL_DF]))

    pairs = list(alias_pairs)
    if pairs:
        a = np.asarray([p[0] for p in pairs], dtype=np.int64)
        b = np.asarray([p[1] for p in pairs], dtype=np.int64)
        pieces.append((a, b, label_id[LABEL_DF]))
        pieces.append((b, a, label_id[LABEL_DF]))

    all_src = np.concatenate([p[0] for p in pieces]) if pieces else np.empty(0)
    all_dst = np.concatenate([p[1] for p in pieces]) if pieces else np.empty(0)
    all_lab = (
        np.concatenate(
            [np.full(len(p[0]), p[2], dtype=np.int64) for p in pieces]
        )
        if pieces
        else np.empty(0)
    )
    return MemGraph.from_arrays(
        all_src,
        all_dst,
        all_lab,
        num_vertices=pg.num_vertices,
        label_names=DATAFLOW_LABELS,
    )


def taint_graph(
    pg: ProgramGraphs,
    alias_pairs: Iterable[Tuple[int, int]] = (),
) -> MemGraph:
    """The taint/injection analysis input graph.

    ``TS`` edges mark untrusted-input sources (``input()`` results,
    reached from the shared TAINT vertex); ``TD`` edges are every
    taint-propagating flow — assignments and parameter/return bindings
    (``A``), arithmetic (``TF``: concatenating a tainted string into a
    query keeps it tainted), and alias bridges from the pointer
    analysis (both directions), so taint crosses the heap exactly where
    stores and loads may touch the same cell.  ``sanitize()`` emitted
    no edge at all, so the closure's TT paths cannot cross a cleanser.
    """
    label_id = {name: i for i, name in enumerate(TAINT_LABELS)}
    pieces: List[Tuple[np.ndarray, np.ndarray, int]] = []

    src, dst = pg.edges_of_kind(KIND_TS)
    pieces.append((src, dst, label_id[LABEL_TS]))

    src, dst = pg.edges_of_kind(KIND_A, KIND_TF)
    pieces.append((src, dst, label_id[LABEL_TD]))

    pairs = list(alias_pairs)
    if pairs:
        a = np.asarray([p[0] for p in pairs], dtype=np.int64)
        b = np.asarray([p[1] for p in pairs], dtype=np.int64)
        pieces.append((a, b, label_id[LABEL_TD]))
        pieces.append((b, a, label_id[LABEL_TD]))

    all_src = np.concatenate([p[0] for p in pieces])
    all_dst = np.concatenate([p[1] for p in pieces])
    all_lab = np.concatenate(
        [np.full(len(p[0]), p[2], dtype=np.int64) for p in pieces]
    )
    return MemGraph.from_arrays(
        all_src,
        all_dst,
        all_lab,
        num_vertices=pg.num_vertices,
        label_names=TAINT_LABELS,
    )
